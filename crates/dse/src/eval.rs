//! Per-candidate scoring: oracle validation plus the three-axis objective.

use appmult_circuit::{CostModel, ExhaustiveTable, HardwareCost, MultiplierCircuit, Netlist};
use appmult_mult::{ErrorMetrics, MultiplierLut};
use appmult_pool::Pool;
use appmult_retrain::{candidates_for_bits, select_hws, GradientLut, GradientMode};
use appmult_verify::{analyze_netlist, Severity, StaGate};

/// Optional accuracy-refinement callback applied to frontier members
/// after the search (the "mini-retrain rung"): given the candidate's
/// product LUT, returns a retrained-accuracy-style score. Kept opaque so
/// the crate stays free of the NN stack; the `dse` bench binary wires a
/// short LeNet retraining in behind `--rung`.
pub type RungFn = dyn Fn(&MultiplierLut) -> f64 + Send + Sync;

/// Search configuration. Everything that influences the result is in
/// here, so two runs with equal configs are bit-identical regardless of
/// the evaluation pool's thread count.
pub struct DseConfig {
    /// Operand width `B` of the multipliers being searched (1..=10).
    pub bits: u32,
    /// Master seed; every candidate derives its private RNG stream as
    /// `seed ^ candidate_id`.
    pub seed: u64,
    /// Survivor count per generation (μ).
    pub mu: usize,
    /// Offspring count per generation (λ).
    pub lambda: usize,
    /// Number of generations.
    pub generations: usize,
    /// Maximum mutations applied to one offspring (uniform in
    /// `1..=max_mutations`).
    pub max_mutations: usize,
    /// Profiled marginal distribution of the weight operand (`2^B`
    /// entries, sums to 1).
    pub w_probs: Vec<f64>,
    /// Profiled marginal distribution of the activation operand.
    pub x_probs: Vec<f64>,
    /// Hardware cost of the exact reference design (normalizes the hw
    /// axis; use the array multiplier of the same width).
    pub reference: HardwareCost,
    /// Opt-in mini-retrain rung for frontier members (recorded, not used
    /// for selection, so it never perturbs the deterministic frontier).
    pub rung: Option<Box<RungFn>>,
}

impl std::fmt::Debug for DseConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DseConfig")
            .field("bits", &self.bits)
            .field("seed", &self.seed)
            .field("mu", &self.mu)
            .field("lambda", &self.lambda)
            .field("generations", &self.generations)
            .field("max_mutations", &self.max_mutations)
            .field("rung", &self.rung.is_some())
            .finish_non_exhaustive()
    }
}

impl DseConfig {
    /// Small smoke-scale configuration: μ=8, λ=16, 6 generations, the
    /// default profiled marginals, and the exact array multiplier of the
    /// same width as the hardware reference.
    pub fn smoke(bits: u32, seed: u64) -> Self {
        let (w_probs, x_probs) = default_marginals(bits);
        let reference = CostModel::asap7().estimate(&MultiplierCircuit::array(bits));
        Self {
            bits,
            seed,
            mu: 8,
            lambda: 16,
            generations: 6,
            max_mutations: 2,
            w_probs,
            x_probs,
            reference,
            rung: None,
        }
    }
}

/// Deterministic stand-in for operand histograms profiled from a running
/// DNN: quantized weights cluster around mid-range (a discretized
/// Gaussian), post-ReLU activations skew toward small magnitudes (a
/// discretized exponential). Both sum to 1.
pub fn default_marginals(bits: u32) -> (Vec<f64>, Vec<f64>) {
    let n = 1usize << bits;
    let mu = (n as f64 - 1.0) / 2.0;
    let sigma = n as f64 / 4.0;
    let mut w: Vec<f64> = (0..n)
        .map(|v| (-((v as f64 - mu) / sigma).powi(2) / 2.0).exp())
        .collect();
    let tau = n as f64 / 4.0;
    let mut x: Vec<f64> = (0..n).map(|v| (-(v as f64) / tau).exp()).collect();
    for probs in [&mut w, &mut x] {
        let sum: f64 = probs.iter().sum();
        for p in probs.iter_mut() {
            *p /= sum;
        }
    }
    (w, x)
}

/// The three minimized axes of the search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    /// Hardware: mean of delay/area/power, each normalized to the exact
    /// reference design (1.0 = as expensive as the exact array).
    pub hw: f64,
    /// Error: NMED plus MaxED normalized by `2^(2B) - 1`.
    pub err: f64,
    /// Gradient-fidelity proxy: marginal-weighted MSE between the
    /// candidate's difference-based gradients (at its best HWS) and the
    /// exact product's slopes, normalized to `[0, ~1]`.
    pub proxy: f64,
}

impl Objective {
    /// The axes as an array, in `(hw, err, proxy)` order.
    pub fn as_array(&self) -> [f64; 3] {
        [self.hw, self.err, self.proxy]
    }
}

/// Everything the oracle and scorers said about one valid candidate.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Calibrated area/delay/power.
    pub cost: HardwareCost,
    /// Error metrics under the profiled marginals.
    pub metrics: ErrorMetrics,
    /// Best half window size for the difference-based gradient.
    pub hws: u32,
    /// Proxy loss at that HWS.
    pub proxy_loss: f64,
    /// The three-axis objective vector.
    pub objective: Objective,
    /// Levelized logic depth.
    pub depth: u32,
    /// Output-reachable physical gate count.
    pub live_gates: usize,
    /// Critical path from the shared STA.
    pub critical_path: Vec<StaGate>,
}

/// Why a candidate was discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reject {
    /// Not a `2B`-input / `2B`-output multiplier interface.
    Shape(&'static str),
    /// The analysis oracle reported this many error-severity diagnostics.
    Oracle(usize),
    /// The HWS proxy could not be scored (no candidates or divergent).
    Proxy,
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::Shape(what) => write!(f, "interface mismatch: {what}"),
            Reject::Oracle(n) => write!(f, "analysis oracle reported {n} error(s)"),
            Reject::Proxy => write!(f, "HWS proxy scoring failed"),
        }
    }
}

/// Builds the `2^(2B)`-entry product LUT of a multiplier netlist with a
/// **serial** exhaustive simulation (the search already parallelizes over
/// candidates; nested pools would fight for cores and add no determinism
/// risk, but plenty of spawn overhead).
pub(crate) fn build_lut(netlist: &Netlist, bits: u32, name: &str) -> MultiplierLut {
    let table = ExhaustiveTable::build_in(netlist, Pool::serial());
    let values = table.values();
    let n = 1usize << bits;
    // The simulator indexes combinations as `(x << B) | w`; the LUT
    // convention is `(w << B) | x`.
    let mut products = vec![0u32; n * n];
    for w in 0..n {
        for x in 0..n {
            products[(w << bits) | x] = values[(x << bits) | w] as u32;
        }
    }
    MultiplierLut::from_entries(name, bits, products)
}

/// Marginal-weighted MSE between the candidate's difference-based
/// gradients at `hws` and the exact product's slopes (`∂(w·x)/∂x = w`,
/// `∂(w·x)/∂w = x`), normalized by `2(2^B - 1)^2` so a gradient that is
/// wrong by the full operand range everywhere scores ~1.
fn gradient_fidelity_loss(lut: &MultiplierLut, hws: u32, w_probs: &[f64], x_probs: &[f64]) -> f64 {
    let grads =
        GradientLut::build_with_pool(lut, GradientMode::difference_based(hws), Pool::serial());
    let bits = lut.bits();
    let n = 1u32 << bits;
    let range = f64::from(n - 1).max(1.0);
    let mut loss = 0.0;
    for w in 0..n {
        let pw = w_probs[w as usize];
        for x in 0..n {
            let p = pw * x_probs[x as usize];
            if p == 0.0 {
                continue;
            }
            let dx = f64::from(grads.wrt_x(w, x)) - f64::from(w);
            let dw = f64::from(grads.wrt_w(w, x)) - f64::from(x);
            loss += p * (dx * dx + dw * dw);
        }
    }
    loss / (2.0 * range * range)
}

/// Validates and scores one candidate netlist.
///
/// # Errors
///
/// [`Reject::Shape`] if the netlist is not a `2B`-in/`2B`-out multiplier,
/// [`Reject::Oracle`] if [`analyze_netlist`] reports any error-severity
/// diagnostic (cycles, dangling references, over-capacity input counts,
/// STA inconsistencies), [`Reject::Proxy`] if HWS selection fails.
pub fn evaluate_netlist(
    netlist: &Netlist,
    cfg: &DseConfig,
    model: &CostModel,
) -> Result<Evaluation, Reject> {
    let io = 2 * cfg.bits as usize;
    if netlist.num_inputs() != io {
        return Err(Reject::Shape("primary input count"));
    }
    if netlist.outputs().len() != io {
        return Err(Reject::Shape("primary output count"));
    }
    let analysis = analyze_netlist(netlist, model);
    if !analysis.is_valid() {
        let errors = analysis
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        return Err(Reject::Oracle(errors));
    }
    let lut = build_lut(netlist, cfg.bits, "candidate");
    let metrics = ErrorMetrics::with_marginals(&lut, &cfg.w_probs, &cfg.x_probs);
    let candidates = candidates_for_bits(cfg.bits);
    let selection = select_hws(&candidates, |hws| {
        gradient_fidelity_loss(&lut, hws, &cfg.w_probs, &cfg.x_probs)
    })
    .map_err(|_| Reject::Proxy)?;
    let proxy_loss = selection
        .trials
        .iter()
        .find(|t| t.hws == selection.best)
        .map(|t| t.train_loss)
        .unwrap_or(f64::INFINITY);
    if !proxy_loss.is_finite() {
        return Err(Reject::Proxy);
    }
    let reference = &cfg.reference;
    let hw = (analysis.cost.delay_ps / reference.delay_ps
        + analysis.cost.area_um2 / reference.area_um2
        + analysis.cost.power_uw / reference.power_uw)
        / 3.0;
    let norm = ((1u64 << (2 * cfg.bits)) - 1) as f64;
    let err = metrics.nmed + metrics.max_ed as f64 / norm;
    Ok(Evaluation {
        cost: analysis.cost,
        metrics,
        hws: selection.best,
        proxy_loss,
        objective: Objective {
            hw,
            err,
            proxy: proxy_loss,
        },
        depth: analysis.depth,
        live_gates: analysis.live_gates,
        critical_path: analysis.sta.critical_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_circuit::MultiplierStructure;

    #[test]
    fn marginals_are_distributions() {
        for bits in [3u32, 4, 6] {
            let (w, x) = default_marginals(bits);
            assert_eq!(w.len(), 1 << bits);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(w.iter().chain(&x).all(|&p| p > 0.0));
        }
    }

    #[test]
    fn exact_multiplier_scores_the_ideal_point() {
        let cfg = DseConfig::smoke(4, 1);
        let model = CostModel::asap7();
        let exact = MultiplierCircuit::array(4);
        let eval = evaluate_netlist(exact.netlist(), &cfg, &model).unwrap();
        // By construction the reference *is* this design: hw = 1.
        assert!((eval.objective.hw - 1.0).abs() < 1e-12);
        // An exact product has zero error; its difference gradients match
        // the exact slopes up to operand-range boundary clamping, so the
        // proxy is near (not exactly) zero.
        assert_eq!(eval.metrics.max_ed, 0);
        assert_eq!(eval.objective.err, 0.0);
        assert!(
            eval.objective.proxy < 1e-2,
            "proxy={}",
            eval.objective.proxy
        );
        assert!(!eval.critical_path.is_empty());
    }

    #[test]
    fn truncated_multiplier_trades_error_for_hardware() {
        let cfg = DseConfig::smoke(4, 1);
        let model = CostModel::asap7();
        let rm = MultiplierCircuit::with_removed_columns(4, 2, MultiplierStructure::default());
        let eval = evaluate_netlist(rm.netlist(), &cfg, &model).unwrap();
        assert!(eval.objective.hw < 1.0, "truncation must be cheaper");
        assert!(eval.objective.err > 0.0, "truncation must err");
    }

    #[test]
    fn oracle_rejects_cyclic_candidates() {
        let cfg = DseConfig::smoke(4, 1);
        let model = CostModel::asap7();
        let mut nl = MultiplierCircuit::array(4).netlist().clone();
        // Create a combinational cycle via a forward-referencing rewire.
        let last = appmult_circuit::Signal::from_index(nl.num_nodes() - 1);
        let victim = nl
            .iter()
            .find(|(_, g)| g.kind.arity() == 2)
            .map(|(s, _)| s)
            .unwrap();
        nl.set_fanin(victim, 0, last).unwrap();
        match evaluate_netlist(&nl, &cfg, &model) {
            Err(Reject::Oracle(n)) => assert!(n > 0),
            other => panic!("expected oracle rejection, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let cfg = DseConfig::smoke(4, 1);
        let model = CostModel::asap7();
        let wrong_width = MultiplierCircuit::array(3);
        assert!(matches!(
            evaluate_netlist(wrong_width.netlist(), &cfg, &model),
            Err(Reject::Shape("primary input count"))
        ));
    }
}
