//! Closed-loop design-space exploration over approximate multipliers.
//!
//! The paper retrains DNNs against a *fixed* zoo of approximate
//! multipliers; this crate turns the repo's evaluation machinery into a
//! *search*: a seeded μ+λ evolutionary loop that mutates multiplier
//! netlists ([`Mutation`], generalizing the ALS rewrites), validates every
//! candidate with the `appmult-verify` analysis oracle (invalid candidates
//! are discarded and counted), and scores survivors on a three-axis
//! objective:
//!
//! 1. **hardware** — delay/area/power from the shared STA, normalized to
//!    the exact array multiplier of the same width,
//! 2. **error** — NMED plus normalized MaxED under profiled per-operand
//!    input distributions ([`ErrorMetrics::with_marginals`]),
//! 3. **gradient proxy** — how faithfully the difference-based gradient of
//!    the candidate (at its best HWS) reproduces the exact product's
//!    slopes, a fast stand-in for retrained accuracy.
//!
//! Selection is Pareto (non-dominated sorting with crowding distance). The
//! population evaluates in parallel across `appmult-pool`, but every
//! candidate owns a private RNG stream seeded by `seed ^ candidate id`, so
//! the thread count never changes the result — the frontier is
//! byte-identical at `APPMULT_THREADS=1` and `=8`.
//!
//! # Example
//!
//! ```
//! use appmult_circuit::MultiplierCircuit;
//! use appmult_dse::{DseConfig, run};
//! use appmult_pool::Pool;
//!
//! let cfg = DseConfig::smoke(4, 7);
//! let seeds = vec![
//!     MultiplierCircuit::array(4).netlist().clone(),
//!     MultiplierCircuit::with_removed_columns(4, 2, Default::default())
//!         .netlist()
//!         .clone(),
//! ];
//! let result = run(&cfg, &seeds, &Pool::serial());
//! assert!(!result.frontier.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod mutation;
mod report;
mod search;

pub use eval::{
    default_marginals, evaluate_netlist, DseConfig, Evaluation, Objective, Reject, RungFn,
};
pub use mutation::Mutation;
pub use report::{dse_json, frontier_json, DSE_SCHEMA_VERSION};
pub use search::{dominates, pareto_front, run, Candidate, DseResult, GenerationStats};
