//! `results/DSE.json` serialization (schema `appmult-dse/v1`).
//!
//! Hand-rolled line-oriented JSON like the rest of the workspace (the
//! repo is zero-dependency). Every float is emitted twice: once as the
//! shortest-round-trip decimal for humans, once as its IEEE-754 bit
//! pattern (`*_bits` / `objective_bits`) so the determinism regression
//! can compare frontiers bit-for-bit without parsing decimals.
//!
//! [`frontier_json`] deliberately excludes anything machine-dependent
//! (thread count, kernel): two runs with the same config must produce
//! byte-identical frontier files regardless of `APPMULT_THREADS`. The
//! full [`dse_json`] adds the run environment in its config header.

use crate::eval::{DseConfig, Objective};
use crate::search::{Candidate, DseResult};

/// Version tag in the `schema` field of `results/DSE.json`.
pub const DSE_SCHEMA_VERSION: &str = "appmult-dse/v1";

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn objective_fields(o: &Objective, indent: &str, out: &mut String) {
    out.push_str(&format!(
        "{indent}\"objective\": {{\"hw\": {}, \"err\": {}, \"proxy\": {}}},\n",
        o.hw, o.err, o.proxy
    ));
    out.push_str(&format!(
        "{indent}\"objective_bits\": [{}, {}, {}],\n",
        o.hw.to_bits(),
        o.err.to_bits(),
        o.proxy.to_bits()
    ));
}

fn frontier_entry(cfg: &DseConfig, c: &Candidate, out: &mut String) {
    let e = &c.eval;
    out.push_str("    {\n");
    out.push_str(&format!(
        "      \"name\": \"{}\",\n",
        json_escape(&c.design_name(cfg.bits))
    ));
    out.push_str(&format!("      \"id\": {},\n", c.id));
    match c.parent {
        Some(p) => out.push_str(&format!("      \"parent\": {p},\n")),
        None => out.push_str("      \"parent\": null,\n"),
    }
    out.push_str(&format!("      \"bits\": {},\n", cfg.bits));
    let lineage: Vec<String> = c
        .mutations
        .iter()
        .map(|m| format!("\"{}\"", json_escape(m)))
        .collect();
    out.push_str(&format!("      \"mutations\": [{}],\n", lineage.join(", ")));
    objective_fields(&e.objective, "      ", out);
    for (key, value) in [
        ("delay_ps", e.cost.delay_ps),
        ("area_um2", e.cost.area_um2),
        ("power_uw", e.cost.power_uw),
        ("nmed", e.metrics.nmed),
        ("error_rate", e.metrics.error_rate),
    ] {
        out.push_str(&format!("      \"{key}\": {value},\n"));
        out.push_str(&format!("      \"{key}_bits\": {},\n", value.to_bits()));
    }
    out.push_str(&format!("      \"max_ed\": {},\n", e.metrics.max_ed));
    out.push_str(&format!("      \"hws\": {},\n", e.hws));
    match c.rung {
        Some(r) => out.push_str(&format!("      \"rung\": {r},\n")),
        None => out.push_str("      \"rung\": null,\n"),
    }
    out.push_str(&format!("      \"depth\": {},\n", e.depth));
    out.push_str(&format!("      \"live_gates\": {},\n", e.live_gates));
    out.push_str("      \"critical_path\": [\n");
    for (i, g) in e.critical_path.iter().enumerate() {
        let comma = if i + 1 == e.critical_path.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "        {{\"signal\": \"n{}\", \"gate\": \"{}\", \"delay_ps\": {}, \"arrival_ps\": {}}}{comma}\n",
            g.signal.index(),
            g.kind,
            g.delay_ps,
            g.arrival_ps
        ));
    }
    out.push_str("      ],\n");
    out.push_str(&format!(
        "      \"netlist\": \"{}\"\n",
        json_escape(&appmult_circuit::to_netlist_text(&c.netlist))
    ));
    out.push_str("    }");
}

fn frontier_array(cfg: &DseConfig, result: &DseResult, out: &mut String) {
    out.push_str("  \"frontier\": [\n");
    for (i, c) in result.frontier.iter().enumerate() {
        frontier_entry(cfg, c, out);
        out.push_str(if i + 1 == result.frontier.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ]\n");
}

/// Frontier-only JSON: everything that must be **byte-identical** across
/// thread counts for the same `(config, seeds)`.
pub fn frontier_json(cfg: &DseConfig, result: &DseResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{DSE_SCHEMA_VERSION}\",\n"));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"bits\": {},\n", cfg.bits));
    frontier_array(cfg, result, &mut out);
    out.push_str("}\n");
    out
}

/// The full `results/DSE.json` document: config header (including the
/// run environment), per-generation statistics, and the frontier.
pub fn dse_json(cfg: &DseConfig, result: &DseResult, threads: usize, kernel: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{DSE_SCHEMA_VERSION}\",\n"));
    out.push_str("  \"config\": {\n");
    out.push_str(&format!("    \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("    \"bits\": {},\n", cfg.bits));
    out.push_str(&format!("    \"mu\": {},\n", cfg.mu));
    out.push_str(&format!("    \"lambda\": {},\n", cfg.lambda));
    out.push_str(&format!("    \"generations\": {},\n", cfg.generations));
    out.push_str(&format!("    \"max_mutations\": {},\n", cfg.max_mutations));
    out.push_str(&format!("    \"rung\": {},\n", cfg.rung.is_some()));
    out.push_str(&format!("    \"threads\": {threads},\n"));
    out.push_str(&format!("    \"kernel\": \"{}\"\n", json_escape(kernel)));
    out.push_str("  },\n");
    out.push_str(&format!("  \"evaluated\": {},\n", result.evaluated));
    out.push_str(&format!("  \"invalid\": {},\n", result.invalid));
    out.push_str("  \"generations\": [\n");
    for (i, s) in result.stats.iter().enumerate() {
        let comma = if i + 1 == result.stats.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"generation\": {}, \"evaluated\": {}, \"invalid\": {}, \"frontier_size\": {}, \"best\": {{\"hw\": {}, \"err\": {}, \"proxy\": {}}}, \"best_bits\": [{}, {}, {}]}}{comma}\n",
            s.generation,
            s.evaluated,
            s.invalid,
            s.frontier_size,
            s.best.hw,
            s.best.err,
            s.best.proxy,
            s.best.hw.to_bits(),
            s.best.err.to_bits(),
            s.best.proxy.to_bits()
        ));
    }
    out.push_str("  ],\n");
    frontier_array(cfg, result, &mut out);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::run;
    use appmult_circuit::MultiplierCircuit;
    use appmult_pool::Pool;

    fn tiny_result() -> (DseConfig, DseResult) {
        let mut cfg = DseConfig::smoke(3, 5);
        cfg.mu = 4;
        cfg.lambda = 6;
        cfg.generations = 2;
        let seeds = vec![MultiplierCircuit::array(3).netlist().clone()];
        let result = run(&cfg, &seeds, &Pool::serial());
        (cfg, result)
    }

    #[test]
    fn json_documents_are_balanced_and_tagged() {
        let (cfg, result) = tiny_result();
        for doc in [
            frontier_json(&cfg, &result),
            dse_json(&cfg, &result, 1, "scalar"),
        ] {
            assert!(doc.contains(DSE_SCHEMA_VERSION));
            let opens = doc.matches('{').count();
            let closes = doc.matches('}').count();
            assert_eq!(opens, closes, "unbalanced braces");
            assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        }
    }

    #[test]
    fn frontier_netlists_parse_back() {
        let (cfg, result) = tiny_result();
        let doc = frontier_json(&cfg, &result);
        // The netlist text is embedded with \n escapes; the first member
        // of the frontier must round-trip through the parser.
        let needle = "\"netlist\": \"";
        let start = doc.find(needle).expect("frontier has a netlist") + needle.len();
        let end = start + doc[start..].find('"').unwrap();
        let text = doc[start..end].replace("\\n", "\n");
        let parsed = appmult_circuit::from_netlist_text(&text).expect("embedded netlist parses");
        assert_eq!(parsed.num_inputs(), 2 * cfg.bits as usize);
    }

    #[test]
    fn full_json_embeds_run_environment() {
        let (cfg, result) = tiny_result();
        let doc = dse_json(&cfg, &result, 8, "unrolled");
        assert!(doc.contains("\"threads\": 8"));
        assert!(doc.contains("\"kernel\": \"unrolled\""));
        assert!(doc.contains("\"generations\": ["));
        // The frontier serialization is shared with frontier_json.
        let frontier = frontier_json(&cfg, &result);
        let tail = &frontier[frontier.find("\"frontier\"").unwrap()..];
        assert!(doc.contains(tail.trim_end_matches("}\n").trim_end()));
    }
}
