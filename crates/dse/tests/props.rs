//! Property tests (with shrinking) over whole search runs: whatever the
//! master seed, every frontier member must pass the analysis oracle, its
//! recorded NMED must be reproducible from its own netlist export, and
//! the frontier must be mutually non-dominated.

use appmult_circuit::{
    from_netlist_text, to_netlist_text, CostModel, MultiplierCircuit, MultiplierStructure, Netlist,
};
use appmult_dse::{dominates, run, DseConfig, DseResult};
use appmult_mult::{ErrorMetrics, MultiplierLut};
use appmult_pool::Pool;
use appmult_rng::{prop, Rng64};

/// One generated search setup: master seed plus generation count.
type Case = (u64, usize);

fn generate(rng: &mut Rng64, _case: usize) -> Case {
    (rng.next_u64() & 0xffff, 1 + rng.index(3))
}

/// Shrink toward the trivial search: halve the seed, drop generations.
fn shrink(case: &Case) -> Vec<Case> {
    let (seed, generations) = *case;
    let mut smaller = Vec::new();
    if seed > 0 {
        smaller.push((seed / 2, generations));
    }
    if generations > 1 {
        smaller.push((seed, generations - 1));
    }
    smaller
}

fn seeds() -> Vec<Netlist> {
    vec![
        MultiplierCircuit::array(4).netlist().clone(),
        MultiplierCircuit::with_removed_columns(4, 2, MultiplierStructure::default())
            .netlist()
            .clone(),
    ]
}

fn search(case: &Case) -> (DseConfig, DseResult) {
    let (seed, generations) = *case;
    let mut cfg = DseConfig::smoke(4, seed);
    cfg.mu = 4;
    cfg.lambda = 8;
    cfg.generations = generations;
    let result = run(&cfg, &seeds(), &Pool::new(2));
    (cfg, result)
}

#[test]
fn every_frontier_member_passes_the_analysis_oracle() {
    prop::forall_with(
        "frontier members are oracle-valid",
        0xD5E_0001,
        4,
        generate,
        shrink,
        |case| {
            let (_, result) = search(case);
            let model = CostModel::asap7();
            !result.frontier.is_empty()
                && result
                    .frontier
                    .iter()
                    .all(|c| appmult_verify::analyze_netlist(&c.netlist, &model).is_valid())
        },
    );
}

#[test]
fn recorded_nmed_is_reproducible_from_the_netlist_export() {
    prop::forall_with(
        "frontier NMED matches recomputation from export",
        0xD5E_0002,
        4,
        generate,
        shrink,
        |case| {
            let (cfg, result) = search(case);
            result.frontier.iter().all(|c| {
                // Round-trip through the same serialization the report
                // embeds, then rebuild the LUT from scratch.
                let text = to_netlist_text(&c.netlist);
                let Ok(netlist) = from_netlist_text(&text) else {
                    return false;
                };
                let Ok(circuit) = MultiplierCircuit::from_netlist(netlist, cfg.bits) else {
                    return false;
                };
                let products: Vec<u32> = circuit
                    .exhaustive_products()
                    .into_iter()
                    .map(|p| p as u32)
                    .collect();
                let lut = MultiplierLut::from_entries("recheck", cfg.bits, products);
                let metrics = ErrorMetrics::with_marginals(&lut, &cfg.w_probs, &cfg.x_probs);
                metrics.nmed.to_bits() == c.eval.metrics.nmed.to_bits()
                    && metrics.max_ed == c.eval.metrics.max_ed
            })
        },
    );
}

#[test]
fn no_frontier_member_dominates_another() {
    prop::forall_with(
        "frontier is mutually non-dominated",
        0xD5E_0003,
        4,
        generate,
        shrink,
        |case| {
            let (_, result) = search(case);
            result.frontier.iter().all(|a| {
                result
                    .frontier
                    .iter()
                    .all(|b| a.id == b.id || !dominates(&a.eval.objective, &b.eval.objective))
            })
        },
    );
}
