//! Determinism regression: the search result — and the serialized
//! frontier document — is a pure function of `(DseConfig, seeds)`. The
//! evaluation pool's thread count must never change a single byte, and a
//! different master seed must explore a different trajectory.

use appmult_circuit::{MultiplierCircuit, MultiplierStructure};
use appmult_dse::{frontier_json, run, DseConfig};
use appmult_pool::Pool;

fn small_config(seed: u64) -> DseConfig {
    let mut cfg = DseConfig::smoke(4, seed);
    cfg.mu = 6;
    cfg.lambda = 12;
    cfg.generations = 4;
    cfg
}

fn seeds() -> Vec<appmult_circuit::Netlist> {
    vec![
        MultiplierCircuit::array(4).netlist().clone(),
        MultiplierCircuit::with_removed_columns(4, 2, MultiplierStructure::default())
            .netlist()
            .clone(),
    ]
}

#[test]
fn frontier_document_is_byte_identical_across_thread_counts() {
    let cfg = small_config(1);
    let serial = run(&cfg, &seeds(), &Pool::new(1));
    let parallel = run(&cfg, &seeds(), &Pool::new(8));

    // Structural check first, so a mismatch names the diverging id
    // instead of dumping two JSON documents.
    let ids: Vec<u64> = serial.frontier.iter().map(|c| c.id).collect();
    let par_ids: Vec<u64> = parallel.frontier.iter().map(|c| c.id).collect();
    assert_eq!(ids, par_ids, "frontier membership diverged across pools");
    for (a, b) in serial.frontier.iter().zip(&parallel.frontier) {
        let (oa, ob) = (a.eval.objective.as_array(), b.eval.objective.as_array());
        for axis in 0..3 {
            assert_eq!(
                oa[axis].to_bits(),
                ob[axis].to_bits(),
                "objective axis {axis} of candidate {} diverged",
                a.id
            );
        }
        assert_eq!(a.mutations, b.mutations, "lineage of {} diverged", a.id);
    }
    assert_eq!(serial.evaluated, parallel.evaluated);
    assert_eq!(serial.invalid, parallel.invalid);

    // The contract the CI smoke job enforces on the binary: the
    // frontier-only document is byte-identical.
    assert_eq!(frontier_json(&cfg, &serial), frontier_json(&cfg, &parallel));
}

#[test]
fn different_seeds_explore_different_trajectories() {
    let a = run(&small_config(1), &seeds(), &Pool::new(2));
    let b = run(&small_config(2), &seeds(), &Pool::new(2));
    assert_ne!(
        frontier_json(&small_config(1), &a),
        frontier_json(&small_config(2), &b),
        "distinct master seeds must not reproduce the same frontier document"
    );
}
