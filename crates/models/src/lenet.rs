//! LeNet-5 (used by the paper's HWS-selection proxy runs, Sec. V-A).

use appmult_nn::layers::{Flatten, Linear, MaxPool2d, Relu, Sequential};

use crate::builder::ModelConfig;

/// Builds a LeNet-5-style network: two 5x5 convolution + pool stages
/// followed by a three-layer classifier.
///
/// The input must be at least 16x16 so both pooling stages have work to do.
///
/// # Panics
///
/// Panics if the configured input is smaller than 16x16.
///
/// # Example
///
/// ```
/// use appmult_models::{lenet5, ModelConfig};
/// use appmult_nn::{Module, Tensor};
///
/// let mut model = lenet5(&ModelConfig::cifar10());
/// let logits = model.forward(&Tensor::zeros(&[1, 3, 32, 32]), false);
/// assert_eq!(logits.shape(), &[1, 10]);
/// ```
pub fn lenet5(config: &ModelConfig) -> Sequential {
    let (h, w) = config.input_hw;
    assert!(h >= 16 && w >= 16, "LeNet needs at least 16x16 inputs");
    let c1 = 6.max(config.width(6));
    let c2 = 16.max(config.width(16));
    let seed = config.seed;

    // Spatial bookkeeping: conv 5x5 (valid) then 2x2 pool, twice.
    let (h1, w1) = ((h - 4) / 2, (w - 4) / 2);
    let (h2, w2) = ((h1 - 4) / 2, (w1 - 4) / 2);
    let flat = c2 * h2 * w2;

    let mut net = Sequential::new();
    net.push_boxed(config.conv.conv(config.input_channels, c1, 5, 1, 0, seed));
    net = net.push(Relu::new()).push(MaxPool2d::new(2, 2));
    net.push_boxed(config.conv.conv(c1, c2, 5, 1, 0, seed + 1));
    net.push(Relu::new())
        .push(MaxPool2d::new(2, 2))
        .push(Flatten::new())
        .push(Linear::new(flat, 120.max(config.width(120)), seed + 2))
        .push(Relu::new())
        .push(Linear::new(
            120.max(config.width(120)),
            84.max(config.width(84)),
            seed + 3,
        ))
        .push(Relu::new())
        .push(Linear::new(
            84.max(config.width(84)),
            config.num_classes,
            seed + 4,
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_nn::{Module, Tensor};

    #[test]
    fn forward_shape_cifar() {
        let mut m = lenet5(&ModelConfig::cifar10());
        let y = m.forward(&Tensor::zeros(&[2, 3, 32, 32]), true);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn forward_shape_small_inputs() {
        let mut m = lenet5(&ModelConfig::quick_test());
        let y = m.forward(&Tensor::zeros(&[1, 3, 16, 16]), true);
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut m = lenet5(&ModelConfig::quick_test());
        let x = Tensor::zeros(&[1, 3, 16, 16]);
        let y = m.forward(&x, true);
        let g = m.backward(&Tensor::full(y.shape(), 0.1));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn classic_lenet_has_classic_param_count_order() {
        let mut m = lenet5(&ModelConfig::cifar10());
        let n = m.num_params();
        // CIFAR LeNet-5 is ~100k params (62k for MNIST + RGB stem).
        assert!(n > 30_000 && n < 300_000, "{n}");
    }

    #[test]
    #[should_panic(expected = "at least 16x16")]
    fn rejects_tiny_inputs() {
        let cfg = ModelConfig {
            input_hw: (8, 8),
            ..ModelConfig::cifar10()
        };
        lenet5(&cfg);
    }
}
