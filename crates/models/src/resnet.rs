//! ResNet models (CIFAR stems) with basic and bottleneck blocks.

use appmult_nn::layers::{BatchNorm2d, Flatten, GlobalAvgPool, Linear, Relu, Residual, Sequential};

use crate::builder::ModelConfig;

/// Architecture depth of a ResNet model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResNetDepth {
    /// A 10-layer basic-block variant for CPU-scale experiments.
    R10,
    /// ResNet-18 — the model of Table II (bottom) and Fig. 5.
    R18,
    /// ResNet-34 — Fig. 6(a).
    R34,
    /// ResNet-50 (bottleneck blocks) — Fig. 6(b).
    R50,
}

impl ResNetDepth {
    /// `(blocks per stage, uses bottleneck blocks)`.
    fn layout(self) -> ([usize; 4], bool) {
        match self {
            ResNetDepth::R10 => ([1, 1, 1, 1], false),
            ResNetDepth::R18 => ([2, 2, 2, 2], false),
            ResNetDepth::R34 => ([3, 4, 6, 3], false),
            ResNetDepth::R50 => ([3, 4, 6, 3], true),
        }
    }
}

/// Builds a CIFAR-style ResNet: 3x3 stem, four stages with strides
/// `[1, 2, 2, 2]`, global average pooling, and a linear classifier.
///
/// Basic blocks are `conv3x3-BN-ReLU-conv3x3-BN` with identity/projection
/// shortcuts; bottleneck blocks are `1x1 - 3x3 - 1x1` with expansion 4
/// (ResNet-50).
///
/// # Example
///
/// ```
/// use appmult_models::{resnet, ModelConfig, ResNetDepth};
/// use appmult_nn::{Module, Tensor};
///
/// let mut net = resnet(ResNetDepth::R10, &ModelConfig::quick_test());
/// let y = net.forward(&Tensor::zeros(&[1, 3, 16, 16]), false);
/// assert_eq!(y.shape(), &[1, 10]);
/// ```
pub fn resnet(depth: ResNetDepth, config: &ModelConfig) -> Sequential {
    let ([n1, n2, n3, n4], bottleneck) = depth.layout();
    let widths = [
        config.width(64),
        config.width(128),
        config.width(256),
        config.width(512),
    ];
    let expansion = if bottleneck { 4 } else { 1 };
    let mut seed = config.seed;

    let mut net = Sequential::new();
    // Stem: conv3x3 + BN + ReLU (no max pool on CIFAR-sized inputs).
    net.push_boxed(
        config
            .conv
            .conv(config.input_channels, widths[0], 3, 1, 1, seed),
    );
    net.push_boxed(Box::new(BatchNorm2d::new(widths[0])));
    net.push_boxed(Box::new(Relu::new()));
    seed += 1;

    let mut in_c = widths[0];
    for (stage, (&width, &blocks)) in widths.iter().zip(&[n1, n2, n3, n4]).enumerate() {
        let stride = if stage == 0 { 1 } else { 2 };
        for b in 0..blocks {
            let s = if b == 0 { stride } else { 1 };
            let out_c = width * expansion;
            let block = if bottleneck {
                bottleneck_block(config, in_c, width, out_c, s, &mut seed)
            } else {
                basic_block(config, in_c, out_c, s, &mut seed)
            };
            net.push_boxed(Box::new(block));
            in_c = out_c;
        }
    }
    net.push(GlobalAvgPool::new())
        .push(Flatten::new())
        .push(Linear::new(in_c, config.num_classes, seed))
}

fn basic_block(
    config: &ModelConfig,
    in_c: usize,
    out_c: usize,
    stride: usize,
    seed: &mut u64,
) -> Residual {
    let mut main = Sequential::new();
    main.push_boxed(config.conv.conv(in_c, out_c, 3, stride, 1, *seed));
    main.push_boxed(Box::new(BatchNorm2d::new(out_c)));
    main.push_boxed(Box::new(Relu::new()));
    main.push_boxed(config.conv.conv(out_c, out_c, 3, 1, 1, *seed + 1));
    main.push_boxed(Box::new(BatchNorm2d::new(out_c)));
    *seed += 2;
    attach_shortcut(config, main, in_c, out_c, stride, seed)
}

fn bottleneck_block(
    config: &ModelConfig,
    in_c: usize,
    mid_c: usize,
    out_c: usize,
    stride: usize,
    seed: &mut u64,
) -> Residual {
    let mut main = Sequential::new();
    main.push_boxed(config.conv.conv(in_c, mid_c, 1, 1, 0, *seed));
    main.push_boxed(Box::new(BatchNorm2d::new(mid_c)));
    main.push_boxed(Box::new(Relu::new()));
    main.push_boxed(config.conv.conv(mid_c, mid_c, 3, stride, 1, *seed + 1));
    main.push_boxed(Box::new(BatchNorm2d::new(mid_c)));
    main.push_boxed(Box::new(Relu::new()));
    main.push_boxed(config.conv.conv(mid_c, out_c, 1, 1, 0, *seed + 2));
    main.push_boxed(Box::new(BatchNorm2d::new(out_c)));
    *seed += 3;
    attach_shortcut(config, main, in_c, out_c, stride, seed)
}

fn attach_shortcut(
    config: &ModelConfig,
    main: Sequential,
    in_c: usize,
    out_c: usize,
    stride: usize,
    seed: &mut u64,
) -> Residual {
    if stride == 1 && in_c == out_c {
        Residual::new(main)
    } else {
        let mut proj = Sequential::new();
        proj.push_boxed(config.conv.conv(in_c, out_c, 1, stride, 0, *seed));
        proj.push_boxed(Box::new(BatchNorm2d::new(out_c)));
        *seed += 1;
        Residual::with_projection(main, proj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_nn::{Module, Tensor};

    #[test]
    fn r10_forward_backward_shapes() {
        let mut net = resnet(ResNetDepth::R10, &ModelConfig::quick_test());
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[2, 10]);
        let g = net.backward(&Tensor::full(&[2, 10], 0.05));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn r18_parameter_count_at_paper_scale() {
        // CIFAR ResNet-18 is ~11.2M parameters.
        let mut net = resnet(ResNetDepth::R18, &ModelConfig::cifar10());
        let n = net.num_params();
        assert!(n > 10_000_000 && n < 12_500_000, "{n}");
    }

    #[test]
    fn r50_uses_bottleneck_expansion() {
        let cfg = ModelConfig {
            width_div: 8,
            ..ModelConfig::quick_test()
        };
        let mut net50 = resnet(ResNetDepth::R50, &cfg);
        let mut net34 = resnet(ResNetDepth::R34, &cfg);
        // Same stage layout but expansion-4 output widths => more params.
        assert!(net50.num_params() > net34.num_params());
    }

    #[test]
    fn deeper_resnets_have_more_params() {
        let cfg = ModelConfig {
            width_div: 8,
            ..ModelConfig::quick_test()
        };
        let mut a = resnet(ResNetDepth::R10, &cfg);
        let mut b = resnet(ResNetDepth::R18, &cfg);
        let mut c = resnet(ResNetDepth::R34, &cfg);
        assert!(a.num_params() < b.num_params());
        assert!(b.num_params() < c.num_params());
    }

    #[test]
    fn stride_two_stages_reduce_spatial_size() {
        // 16x16 input with 3 stride-2 stages -> 2x2 before GAP; the model
        // must still produce the right logits shape.
        let mut net = resnet(ResNetDepth::R10, &ModelConfig::quick_test());
        let y = net.forward(&Tensor::zeros(&[1, 3, 16, 16]), false);
        assert_eq!(y.shape(), &[1, 10]);
    }
}
