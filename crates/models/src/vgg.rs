//! VGG models with batch normalization (CIFAR stems).

use appmult_nn::layers::{BatchNorm2d, Dropout, Flatten, Linear, MaxPool2d, Relu, Sequential};

use crate::builder::ModelConfig;

/// Architecture depth of a VGG model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VggDepth {
    /// VGG-11 (8 conv layers).
    V11,
    /// VGG-16 (13 conv layers).
    V16,
    /// VGG-19 (16 conv layers) — the model of Table II (top).
    V19,
    /// A 6-conv, 3-stage scaled-down variant for CPU-scale experiments.
    Small,
}

/// `Some(width)` = 3x3 conv with BN + ReLU; `None` = 2x2 max pool.
fn plan(depth: VggDepth) -> Vec<Option<usize>> {
    let cfg: &[usize] = match depth {
        VggDepth::V11 => &[64, 0, 128, 0, 256, 256, 0, 512, 512, 0, 512, 512, 0],
        VggDepth::V16 => &[
            64, 64, 0, 128, 128, 0, 256, 256, 256, 0, 512, 512, 512, 0, 512, 512, 512, 0,
        ],
        VggDepth::V19 => &[
            64, 64, 0, 128, 128, 0, 256, 256, 256, 256, 0, 512, 512, 512, 512, 0, 512, 512, 512,
            512, 0,
        ],
        VggDepth::Small => &[32, 32, 0, 64, 64, 0, 128, 128, 0],
    };
    cfg.iter()
        .map(|&v| if v == 0 { None } else { Some(v) })
        .collect()
}

/// Builds a VGG network for the given depth and configuration.
///
/// Convolutions are 3x3 stride-1 "same"; each is followed by batch norm
/// and ReLU (the standard CIFAR recipe). The classifier is a single linear
/// layer after dropout, acting on the globally pooled-down feature map.
///
/// # Panics
///
/// Panics if the input is too small for the architecture's pooling stages.
///
/// # Example
///
/// ```
/// use appmult_models::{vgg, ModelConfig, VggDepth};
/// use appmult_nn::{Module, Tensor};
///
/// let mut net = vgg(VggDepth::Small, &ModelConfig::quick_test());
/// let y = net.forward(&Tensor::zeros(&[1, 3, 16, 16]), false);
/// assert_eq!(y.shape(), &[1, 10]);
/// ```
pub fn vgg(depth: VggDepth, config: &ModelConfig) -> Sequential {
    let plan = plan(depth);
    let (mut h, mut w) = config.input_hw;
    let mut channels = config.input_channels;
    let mut seed = config.seed;
    let mut net = Sequential::new();
    for step in plan {
        match step {
            Some(base) => {
                let out = config.width(base);
                net.push_boxed(config.conv.conv(channels, out, 3, 1, 1, seed));
                net.push_boxed(Box::new(BatchNorm2d::new(out)));
                net.push_boxed(Box::new(Relu::new()));
                channels = out;
                seed += 1;
            }
            None => {
                assert!(h >= 2 && w >= 2, "input too small for VGG pooling");
                net.push_boxed(Box::new(MaxPool2d::new(2, 2)));
                h /= 2;
                w /= 2;
            }
        }
    }
    net.push(Flatten::new())
        .push(Dropout::new(0.2, seed))
        .push(Linear::new(channels * h * w, config.num_classes, seed + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_nn::{Module, Tensor};

    #[test]
    fn vgg19_has_16_conv_layers() {
        let convs = plan(VggDepth::V19).iter().filter(|s| s.is_some()).count();
        assert_eq!(convs, 16);
        assert_eq!(
            plan(VggDepth::V16).iter().filter(|s| s.is_some()).count(),
            13
        );
        assert_eq!(
            plan(VggDepth::V11).iter().filter(|s| s.is_some()).count(),
            8
        );
    }

    #[test]
    fn small_vgg_forward_backward() {
        let mut net = vgg(VggDepth::Small, &ModelConfig::quick_test());
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[2, 10]);
        let g = net.backward(&Tensor::full(&[2, 10], 0.1));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn vgg19_paper_scale_param_count() {
        // VGG-19 with BN on CIFAR-10 has ~20M parameters; the thin variant
        // here divides widths by width_div.
        let cfg = ModelConfig {
            width_div: 8,
            ..ModelConfig::cifar10()
        };
        let mut net = vgg(VggDepth::V19, &cfg);
        let n = net.num_params();
        assert!(n > 100_000 && n < 1_000_000, "{n}");
    }

    #[test]
    fn width_div_one_matches_canonical_vgg_small_classifier() {
        let cfg = ModelConfig::cifar10();
        let mut net = vgg(VggDepth::V11, &cfg);
        // 8 convs * (conv w + conv b + bn gamma + bn beta) + linear w+b
        let mut count = 0;
        net.visit_params(&mut |_| count += 1);
        assert_eq!(count, 8 * 4 + 2);
    }
}
