//! Shared model-building configuration.

use std::sync::Arc;

use appmult_mult::MultiplierLut;
use appmult_nn::layers::Conv2d;
use appmult_nn::Module;
use appmult_retrain::{ApproxConv2d, GradientLut, QuantConfig};

/// Whether convolutions are accurate float or LUT-based approximate.
#[derive(Clone)]
pub enum ConvMode {
    /// Standard float convolutions.
    Accurate,
    /// AppMult LUT convolutions with the given gradient tables.
    Approximate {
        /// Product LUT (forward path).
        lut: Arc<MultiplierLut>,
        /// Gradient LUT (backward path).
        grads: Arc<GradientLut>,
        /// Quantizer configuration.
        config: QuantConfig,
    },
}

impl std::fmt::Debug for ConvMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvMode::Accurate => write!(f, "Accurate"),
            ConvMode::Approximate { lut, grads, .. } => {
                write!(f, "Approximate({}, {})", lut.name(), grads.mode_label())
            }
        }
    }
}

impl ConvMode {
    /// Convenience constructor for the approximate mode.
    pub fn approximate(lut: Arc<MultiplierLut>, grads: Arc<GradientLut>) -> Self {
        ConvMode::Approximate {
            lut,
            grads,
            config: QuantConfig::default(),
        }
    }

    /// Builds one convolution layer in this mode.
    pub(crate) fn conv(
        &self,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Box<dyn Module> {
        match self {
            ConvMode::Accurate => Box::new(Conv2d::new(in_c, out_c, kernel, stride, padding, seed)),
            ConvMode::Approximate { lut, grads, config } => Box::new(ApproxConv2d::new(
                in_c,
                out_c,
                kernel,
                stride,
                padding,
                seed,
                lut.clone(),
                grads.clone(),
                *config,
            )),
        }
    }
}

/// Configuration shared by all model builders.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Number of output classes.
    pub num_classes: usize,
    /// Input channels (3 for CIFAR-style data).
    pub input_channels: usize,
    /// Input spatial size `(height, width)`.
    pub input_hw: (usize, usize),
    /// Divisor applied to every base channel width (1 = paper scale).
    pub width_div: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
    /// Convolution flavour.
    pub conv: ConvMode,
}

impl ModelConfig {
    /// Paper-scale CIFAR-10 configuration with accurate convolutions.
    pub fn cifar10() -> Self {
        Self {
            num_classes: 10,
            input_channels: 3,
            input_hw: (32, 32),
            width_div: 1,
            seed: 42,
            conv: ConvMode::Accurate,
        }
    }

    /// Paper-scale CIFAR-100 configuration.
    pub fn cifar100() -> Self {
        Self {
            num_classes: 100,
            ..Self::cifar10()
        }
    }

    /// A small configuration for unit tests and CPU-scale experiments:
    /// 16x16 inputs, width divisor 4.
    pub fn quick_test() -> Self {
        Self {
            num_classes: 10,
            input_channels: 3,
            input_hw: (16, 16),
            width_div: 4,
            seed: 42,
            conv: ConvMode::Accurate,
        }
    }

    /// Replaces the convolution mode (builder style).
    pub fn with_conv(mut self, conv: ConvMode) -> Self {
        self.conv = conv;
        self
    }

    /// Scales a base channel count by the width divisor (minimum 4).
    pub(crate) fn width(&self, base: usize) -> usize {
        (base / self.width_div).max(4)
    }
}

/// Copies every parameter of `src` into `dst`, matched by visitation order.
///
/// The accurate and approximate flavours of a model have identical
/// parameter structure, so this implements the Fig. 1 flow: pretrain a
/// float model, then transplant its weights into the AppMult version for
/// quantization + retraining.
///
/// # Panics
///
/// Panics if the parameter counts or shapes differ.
pub fn copy_params(src: &mut dyn Module, dst: &mut dyn Module) {
    let mut values = vec![];
    src.visit_params(&mut |p| values.push(p.value.clone()));
    let mut idx = 0usize;
    dst.visit_params(&mut |p| {
        assert!(idx < values.len(), "destination has more parameters");
        assert_eq!(
            p.value.shape(),
            values[idx].shape(),
            "parameter {idx} shape mismatch"
        );
        p.value = values[idx].clone();
        idx += 1;
    });
    assert_eq!(idx, values.len(), "source has more parameters");
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_mult::{ExactMultiplier, Multiplier};
    use appmult_retrain::GradientMode;

    #[test]
    fn width_scaling_floors_at_four() {
        let cfg = ModelConfig {
            width_div: 16,
            ..ModelConfig::cifar10()
        };
        assert_eq!(cfg.width(64), 4);
        assert_eq!(cfg.width(512), 32);
    }

    #[test]
    fn conv_mode_builds_both_flavours() {
        use appmult_nn::Tensor;
        let lut = Arc::new(ExactMultiplier::new(8).to_lut());
        let grads = Arc::new(GradientLut::build(&lut, GradientMode::Ste));
        let x = Tensor::zeros(&[1, 3, 8, 8]);
        let mut acc = ConvMode::Accurate.conv(3, 4, 3, 1, 1, 1);
        let mut app = ConvMode::approximate(lut, grads).conv(3, 4, 3, 1, 1, 1);
        assert_eq!(acc.forward(&x, true).shape(), &[1, 4, 8, 8]);
        assert_eq!(app.forward(&x, true).shape(), &[1, 4, 8, 8]);
        // Identical parameter structure (required by copy_params).
        assert_eq!(acc.num_params(), app.num_params());
    }

    #[test]
    fn copy_params_transplants_weights() {
        use appmult_nn::Tensor;
        let lut = Arc::new(ExactMultiplier::new(8).to_lut());
        let grads = Arc::new(GradientLut::build(&lut, GradientMode::Ste));
        let mut acc = ConvMode::Accurate.conv(2, 3, 3, 1, 1, 7);
        let mut app = ConvMode::approximate(lut, grads).conv(2, 3, 3, 1, 1, 99);
        copy_params(&mut *acc, &mut *app);
        // With the exact LUT, outputs now agree up to quantization error.
        let x = Tensor::from_vec(
            (0..32).map(|i| (i as f32) / 16.0 - 1.0).collect(),
            &[1, 2, 4, 4],
        );
        let ya = acc.forward(&x, true);
        let yb = app.forward(&x, true);
        for (a, b) in ya.as_slice().iter().zip(yb.as_slice()) {
            assert!((a - b).abs() < 0.08, "{a} vs {b}");
        }
    }
}
