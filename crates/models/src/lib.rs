//! DNN model zoo: LeNet-5, VGG, and ResNet builders.
//!
//! Every model can be built in two flavours selected by [`ConvMode`]:
//!
//! * **accurate** — standard float convolutions ([`appmult_nn::layers::Conv2d`]);
//! * **approximate** — LUT-based AppMult convolutions
//!   ([`appmult_retrain::ApproxConv2d`]) with a chosen gradient rule.
//!
//! Following the paper (and refs. [13], [16]), only the *convolution*
//! layers are approximated; batch-norm, pooling, and the classifier remain
//! accurate. Architectures are parameterized by a width divisor so the
//! faithful paper-scale models (`width_div = 1`) and CPU-scale variants
//! (`width_div = 4` or `8`) share every line of code.
//!
//! # Example
//!
//! ```
//! use appmult_models::{lenet5, ModelConfig};
//! use appmult_nn::{Module, Tensor};
//!
//! let mut model = lenet5(&ModelConfig::quick_test());
//! let y = model.forward(&Tensor::zeros(&[2, 3, 16, 16]), true);
//! assert_eq!(y.shape(), &[2, 10]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod lenet;
mod resnet;
mod vgg;

pub use builder::{copy_params, ConvMode, ModelConfig};
pub use lenet::lenet5;
pub use resnet::{resnet, ResNetDepth};
pub use vgg::{vgg, VggDepth};
