//! Zero-dependency deterministic pseudo-randomness for the workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this tiny generator instead of depending on `rand`:
//! a [`SplitMix64`] stream used to expand seeds, feeding a
//! [`Rng64`] (xoshiro256\*\*) main generator with the uniform / normal /
//! shuffle helpers the other crates need. Every stream is fully
//! deterministic per seed, which keeps all experiments reproducible
//! end to end.
//!
//! # Example
//!
//! ```
//! use appmult_rng::Rng64;
//!
//! let mut rng = Rng64::seed_from_u64(42);
//! let a = rng.uniform_f32(-1.0, 1.0);
//! assert!((-1.0..1.0).contains(&a));
//! assert_eq!(Rng64::seed_from_u64(42).next_u64(), Rng64::seed_from_u64(42).next_u64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// SplitMix64: a tiny, statistically solid 64-bit generator.
///
/// Used directly for cheap derived streams and to seed [`Rng64`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the stream for a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workspace's main generator.
///
/// Seeded via SplitMix64 per the reference implementation's
/// recommendation, so nearby integer seeds still yield uncorrelated
/// streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad range {lo}..{hi}"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad range {lo}..{hi}"
        );
        lo + self.next_f32() * (hi - lo)
    }

    /// Uniform integer in `[0, n)` via Lemire-style rejection-free
    /// widening multiply (bias is negligible for the `n` used here).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "bad range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Bernoulli draw: `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal sample (Box-Muller, cosine branch), `f64`.
    pub fn normal_f64(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::EPSILON);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Standard normal sample (Box-Muller, cosine branch), `f32`.
    pub fn normal_f32(&mut self) -> f32 {
        let u1 = self.next_f32().max(f32::EPSILON);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// In-place Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// `count` distinct indices sampled without replacement from `[0, n)`,
    /// in random order.
    ///
    /// # Panics
    ///
    /// Panics if `count > n`.
    pub fn sample_indices(&mut self, n: usize, count: usize) -> Vec<usize> {
        assert!(count <= n, "cannot sample {count} distinct of {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        self.shuffle(&mut pool);
        pool.truncate(count);
        pool
    }
}

/// Minimal `forall`-style property-test harness with seeded shrinking.
///
/// The offline build cannot depend on `proptest`/`quickcheck`, so the
/// workspace vendors the 10% of them its tests actually use: generate a
/// deterministic stream of integer operand pairs, check a predicate on
/// each, and on failure greedily shrink the failing pair toward `(0, 0)`
/// before reporting — a minimal counterexample is worth far more than the
/// random one that happened to trip the property.
///
/// # Example
///
/// ```
/// use appmult_rng::prop;
///
/// // Multiplication commutes: never fails, runs all cases.
/// prop::forall_pairs("mul commutes", 0xC0, 128, 255, 255, |w, x| w * x == x * w);
///
/// // A broken property yields the minimal failing pair.
/// let ce = prop::check_pairs(0xC1, 128, 255, 255, |w, x| w < 37 || x < 5);
/// assert_eq!(ce.unwrap_err().pair, (37, 5));
/// ```
pub mod prop {
    use super::Rng64;

    /// A failing operand pair, after shrinking.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Counterexample {
        /// The minimal failing pair found by shrinking.
        pub pair: (u64, u64),
        /// The originally generated failing pair (before shrinking).
        pub original: (u64, u64),
        /// Zero-based index of the failing case in the generated stream.
        pub case: usize,
    }

    impl std::fmt::Display for Counterexample {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "minimal counterexample (w, x) = {:?} (shrunk from {:?}, case {})",
                self.pair, self.original, self.case
            )
        }
    }

    /// Greedy shrink toward `(0, 0)`: repeatedly try halving or
    /// decrementing each operand, keeping any candidate that still fails.
    /// Terminates because every accepted step strictly reduces `w + x`.
    fn shrink(mut w: u64, mut x: u64, prop: &impl Fn(u64, u64) -> bool) -> (u64, u64) {
        loop {
            let candidates = [
                (w / 2, x / 2),
                (w / 2, x),
                (w, x / 2),
                (w.saturating_sub(1), x),
                (w, x.saturating_sub(1)),
            ];
            match candidates
                .into_iter()
                .find(|&(cw, cx)| (cw, cx) != (w, x) && !prop(cw, cx))
            {
                Some((cw, cx)) => (w, x) = (cw, cx),
                None => return (w, x),
            }
        }
    }

    /// Checks `prop(w, x)` over `cases` deterministic pairs drawn from
    /// `[0, w_max] x [0, x_max]` (bounds inclusive).
    ///
    /// The four corners of the domain are always checked first — edge
    /// cases like `(0, 0)` and `(max, max)` must not depend on the luck of
    /// the seed — and the remainder of the stream is seeded uniform draws.
    /// On failure the pair is shrunk and returned as a [`Counterexample`];
    /// on success returns the number of cases run.
    ///
    /// # Errors
    ///
    /// Returns the shrunk [`Counterexample`] for the first failing case.
    pub fn check_pairs(
        seed: u64,
        cases: usize,
        w_max: u64,
        x_max: u64,
        prop: impl Fn(u64, u64) -> bool,
    ) -> Result<usize, Counterexample> {
        let mut corners = vec![(0, 0), (0, x_max), (w_max, 0), (w_max, x_max)];
        corners.dedup();
        let mut rng = Rng64::seed_from_u64(seed);
        let mut run = 0usize;
        for case in 0..cases {
            let (w, x) = corners
                .get(case)
                .copied()
                .unwrap_or_else(|| (rng.below(w_max + 1), rng.below(x_max + 1)));
            if !prop(w, x) {
                return Err(Counterexample {
                    pair: shrink(w, x, &prop),
                    original: (w, x),
                    case,
                });
            }
            run += 1;
        }
        Ok(run)
    }

    /// Like [`check_pairs`], but panics with a labelled report on failure.
    ///
    /// # Panics
    ///
    /// Panics if `prop` fails for any generated pair, naming `what`, the
    /// seed, and the minimal shrunk counterexample.
    pub fn forall_pairs(
        what: &str,
        seed: u64,
        cases: usize,
        w_max: u64,
        x_max: u64,
        prop: impl Fn(u64, u64) -> bool,
    ) {
        if let Err(ce) = check_pairs(seed, cases, w_max, x_max, prop) {
            panic!("property '{what}' failed (seed {seed:#x}): {ce}");
        }
    }

    /// Single-operand variant of [`forall_pairs`] over `[0, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `prop` fails for any generated value, after shrinking.
    pub fn forall_u64(what: &str, seed: u64, cases: usize, max: u64, prop: impl Fn(u64) -> bool) {
        forall_pairs(what, seed, cases, max, 0, |v, _| prop(v));
    }

    /// A failing case of a generic property, after shrinking.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct CaseCounterexample<T> {
        /// The minimal failing case found by shrinking.
        pub value: T,
        /// The originally generated failing case (before shrinking).
        pub original: T,
        /// Zero-based index of the failing case in the generated stream.
        pub case: usize,
    }

    /// Checks `prop` over `cases` deterministic values from `generate`
    /// (called with the stream index, so implementations can emit corner
    /// cases first and seeded draws after).
    ///
    /// On failure the case is shrunk greedily: `shrink_steps` proposes
    /// smaller candidates, and the first still-failing candidate is
    /// adopted, repeating until no candidate fails (or a step budget runs
    /// out, which bounds shrinking even for non-decreasing proposals). On
    /// success returns the number of cases run.
    ///
    /// # Errors
    ///
    /// Returns the shrunk [`CaseCounterexample`] for the first failing
    /// case.
    ///
    /// # Example
    ///
    /// ```
    /// use appmult_rng::{prop, Rng64};
    ///
    /// // "All generated pairs have sum < 12" fails and shrinks to a
    /// // minimal pair that still sums to 12.
    /// let result = prop::check_with(
    ///     9,
    ///     64,
    ///     |rng: &mut Rng64, _case| (rng.below(10), rng.below(10)),
    ///     |&(a, b)| vec![(a / 2, b), (a, b / 2), (a.saturating_sub(1), b), (a, b.saturating_sub(1))],
    ///     |&(a, b)| a + b < 12,
    /// );
    /// let ce = result.unwrap_err();
    /// assert_eq!(ce.value.0 + ce.value.1, 12, "shrunk to the boundary");
    /// ```
    pub fn check_with<T: Clone + PartialEq>(
        seed: u64,
        cases: usize,
        generate: impl Fn(&mut Rng64, usize) -> T,
        shrink_steps: impl Fn(&T) -> Vec<T>,
        prop: impl Fn(&T) -> bool,
    ) -> Result<usize, CaseCounterexample<T>> {
        let mut rng = Rng64::seed_from_u64(seed);
        for case in 0..cases {
            let value = generate(&mut rng, case);
            if !prop(&value) {
                let mut shrunk = value.clone();
                for _ in 0..10_000 {
                    match shrink_steps(&shrunk)
                        .into_iter()
                        .find(|c| *c != shrunk && !prop(c))
                    {
                        Some(c) => shrunk = c,
                        None => break,
                    }
                }
                return Err(CaseCounterexample {
                    value: shrunk,
                    original: value,
                    case,
                });
            }
        }
        Ok(cases)
    }

    /// Like [`check_with`], but panics with a labelled report on failure.
    ///
    /// # Panics
    ///
    /// Panics if `prop` fails for any generated case, naming `what`, the
    /// seed, and the minimal shrunk counterexample.
    pub fn forall_with<T: Clone + PartialEq + std::fmt::Debug>(
        what: &str,
        seed: u64,
        cases: usize,
        generate: impl Fn(&mut Rng64, usize) -> T,
        shrink_steps: impl Fn(&T) -> Vec<T>,
        prop: impl Fn(&T) -> bool,
    ) {
        if let Err(ce) = check_with(seed, cases, generate, shrink_steps, prop) {
            panic!(
                "property '{what}' failed (seed {seed:#x}): minimal counterexample {:?} (shrunk from {:?}, case {})",
                ce.value, ce.original, ce.case
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        let mut c = Rng64::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs of SplitMix64 for seed 1234567.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism across constructions.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            let y = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng64::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.uniform_f32(-2.5, 0.5);
            assert!((-2.5..0.5).contains(&v));
            let w = rng.uniform_f64(3.0, 3.125);
            assert!((3.0..3.125).contains(&w));
        }
    }

    #[test]
    fn below_and_range_cover_support() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng64::seed_from_u64(99);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal_f64()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::seed_from_u64(17);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle changed the order");
    }

    #[test]
    fn sample_indices_are_distinct() {
        let mut rng = Rng64::seed_from_u64(23);
        let picks = rng.sample_indices(50, 20);
        assert_eq!(picks.len(), 20);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
    }

    #[test]
    fn chance_tracks_probability() {
        let mut rng = Rng64::seed_from_u64(31);
        let hits = (0..20_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn prop_passing_property_runs_all_cases() {
        assert_eq!(
            prop::check_pairs(1, 200, 100, 100, |w, x| w + x <= 200),
            Ok(200)
        );
    }

    #[test]
    fn prop_shrinks_to_the_minimal_failing_pair() {
        let ce = prop::check_pairs(2, 64, 1023, 1023, |w, x| !(w >= 37 && x >= 5)).unwrap_err();
        assert_eq!(ce.pair, (37, 5), "{ce}");
        assert!(ce.original.0 >= 37 && ce.original.1 >= 5);
    }

    #[test]
    fn prop_corners_do_not_depend_on_seed_luck() {
        // Fails only at the far corner: with just 4 cases the corner sweep
        // must still find it, whatever the seed.
        for seed in 0..8 {
            let ce = prop::check_pairs(seed, 4, 512, 512, |w, x| !(w == 512 && x == 512))
                .expect_err("corner must be generated");
            assert_eq!(ce.original, (512, 512));
            assert_eq!(ce.pair, (512, 512), "nothing smaller fails");
        }
    }

    #[test]
    #[should_panic(expected = "property 'demo' failed")]
    fn prop_forall_panics_with_label() {
        prop::forall_pairs("demo", 4, 16, 10, 10, |_, _| false);
    }

    #[test]
    fn prop_single_operand_wrapper_bounds_values() {
        prop::forall_u64("v stays in range", 5, 100, 77, |v| v <= 77);
    }
}
