//! Golden-file regression tests for the cheap deterministic artifacts.
//!
//! The fig3 series and Table I rows of the two inexpensive multipliers
//! (`mul7u_rm6`, `mul6u_rm4` — both exact-semantics designs with gate-level
//! netlists) are regenerated through the same `appmult_bench` functions the
//! binaries use and compared byte for byte against the checked-in copies
//! under `golden/`. Any change to the LUTs, the Eq. 4-6 gradient math, the
//! error metrics, or the cost model shows up as a readable line diff here.
//!
//! To bless an intentional change: `UPDATE_GOLDEN=1 cargo test -p
//! appmult-bench --test golden`, then commit the updated files.

use appmult_bench::grad_matrix_driver::{run_grad_matrix, EstimatorKind, GradMatrixConfig};
use appmult_bench::{fig3_csv, table1_row, TABLE1_CSV_HEADER};
use appmult_circuit::CostModel;
use appmult_mult::{zoo, Multiplier};

/// Compares `actual` against `golden/<name>`, with an opt-in regeneration
/// path via the `UPDATE_GOLDEN` environment variable.
fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    if expected != actual {
        let mismatch = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a);
        match mismatch {
            Some((i, (e, a))) => panic!(
                "{name} diverged from golden at line {}:\n  golden: {e}\n  actual: {a}\n\
                 (UPDATE_GOLDEN=1 re-blesses if the change is intentional)",
                i + 1
            ),
            None => panic!(
                "{name} diverged from golden in length: {} vs {} lines",
                expected.lines().count(),
                actual.lines().count()
            ),
        }
    }
}

#[test]
fn fig3_series_for_mul7u_rm6_matches_golden() {
    // The paper's own figure: W_f = 10, HWS = 4.
    let lut = zoo::mul7u_rm6().to_lut();
    assert_golden("fig3_mul7u_rm6.csv", &fig3_csv(&lut, 10, 4));
}

#[test]
fn fig3_series_for_mul6u_rm4_matches_golden() {
    // Same slice for the 6-bit CIFAR-100 multiplier at its Table I HWS.
    let lut = zoo::mul6u_rm4().to_lut();
    let hws = zoo::entry("mul6u_rm4").expect("known").recommended_hws();
    assert_golden("fig3_mul6u_rm4.csv", &fig3_csv(&lut, 10, hws));
}

#[test]
fn grad_matrix_grid_for_seeded_smoke_matches_golden() {
    // One seeded cell grid over the two default designs (unsigned
    // mul7u_rm6 and the signed int8 mul8u_rm6_signed) with a cut-down
    // estimator set and schedule. The grid document is machine-independent
    // by construction (no threads/kernel fields, bit-identical parallel
    // table builds and GEMMs), so a byte-level compare is stable across
    // thread counts; a diff here means the estimator math or the
    // retraining data path changed.
    let mut cfg = GradMatrixConfig::smoke(7);
    cfg.pretrain_epochs = 1;
    cfg.retrain_epochs = 1;
    cfg.estimators = vec![EstimatorKind::Ste, EstimatorKind::Diff, EstimatorKind::Lsq];
    let outcome = run_grad_matrix(&cfg);
    assert_golden("grad_matrix_grid_seed7.json", &outcome.grid_json);
}

#[test]
fn table1_rows_for_cheap_multipliers_match_golden() {
    let model = CostModel::asap7();
    let mut csv = String::from(TABLE1_CSV_HEADER);
    for name in ["mul7u_rm6", "mul6u_rm4"] {
        let entry = zoo::entry(name).expect("known");
        csv.push_str(&table1_row(&entry, &model).csv_line());
    }
    assert_golden("table1_cheap.csv", &csv);
}
