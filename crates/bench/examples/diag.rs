//! Diagnostic: does each gradient mode descend on a single approx layer?
use appmult_mult::{zoo, Multiplier};
use appmult_nn::optim::{Adam, Optimizer};
use appmult_nn::{Module, Tensor};
use appmult_retrain::{ApproxLinear, GradientLut, GradientMode, QuantConfig};
use std::sync::Arc;

fn run(mode: GradientMode, hws_label: &str, lut: &Arc<appmult_mult::MultiplierLut>) {
    let grads = Arc::new(GradientLut::build(lut, mode));
    let mut layer = ApproxLinear::new(16, 8, 7, lut.clone(), grads, QuantConfig::default());
    // Fixed random input batch and a fixed random target.
    let x = Tensor::from_vec(
        (0..64 * 16)
            .map(|i| ((i * 37) % 23) as f32 / 11.0 - 1.0)
            .collect(),
        &[64, 16],
    );
    let target = Tensor::from_vec(
        (0..64 * 8)
            .map(|i| ((i * 53) % 17) as f32 / 4.0 - 2.0)
            .collect(),
        &[64, 8],
    );
    let mut opt = Adam::new(3e-3);
    let mut first = 0.0;
    let mut last = 0.0;
    for step in 0..300 {
        let y = layer.forward(&x, true);
        let diff: Vec<f32> = y
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(a, b)| a - b)
            .collect();
        let loss: f32 = diff.iter().map(|d| d * d).sum::<f32>() / diff.len() as f32;
        let grad = Tensor::from_vec(
            diff.iter().map(|d| 2.0 * d / (64.0 * 8.0)).collect(),
            &[64, 8],
        );
        layer.backward(&grad);
        opt.step(&mut layer);
        layer.zero_grad();
        if step == 0 {
            first = loss;
        }
        last = loss;
    }
    println!("{hws_label:20} loss {first:.4} -> {last:.4}");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for name in ["mul8u_rm8", "mul8u_1DMU", "mul8u_2NDH", "mul7u_06Q"] {
        let entry = zoo::entry(name).ok_or_else(|| format!("unknown zoo multiplier {name}"))?;
        let lut = Arc::new(entry.multiplier.to_lut());
        println!("== {name} ==");
        run(GradientMode::Ste, "STE", &lut);
        for h in [2u32, 4, 8, 16, 32] {
            run(
                GradientMode::difference_based(h),
                &format!("diff hws={h}"),
                &lut,
            );
        }
        run(GradientMode::RawDifference, "raw-diff", &lut);
    }
    Ok(())
}
