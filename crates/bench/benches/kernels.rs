//! Micro-benchmarks of the retraining kernels (dependency-free harness).
//!
//! Backs the paper's runtime discussion (Sec. V-B): the difference-based
//! method costs extra over STE in (a) building the gradient LUTs and
//! (b) the LUT-indexed backward pass. Measured here:
//!
//! * float vs LUT convolution forward;
//! * LUT backward with STE vs difference-based gradient tables;
//! * gradient-LUT construction (STE vs difference-based vs raw);
//! * product-LUT extraction and exhaustive error metrics.
//!
//! Criterion is unavailable in the offline build environment, so this is
//! a plain `harness = false` binary: per benchmark it warms up, then
//! reports the median of repeated timed batches.
//!
//! Run with `cargo bench -p appmult-bench`.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use appmult_mult::{ErrorMetrics, Multiplier, TruncatedMultiplier};
use appmult_nn::layers::{Conv2d, Conv2dSpec};
use appmult_nn::{Module, Tensor};
use appmult_retrain::{ApproxConv2d, GradientLut, GradientMode, QuantConfig};

/// Runs `f` repeatedly for ~`measure` after a warm-up, returning the
/// median per-iteration time over `samples` batches.
fn bench<F: FnMut()>(name: &str, mut f: F) {
    let warmup = Duration::from_millis(300);
    let measure = Duration::from_millis(1200);
    let samples = 12usize;

    // Warm-up and iteration-count calibration.
    let mut iters_per_batch = 1u64;
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed() < warmup {
        f();
        calls += 1;
    }
    if calls > 0 {
        let per_call = warmup.as_secs_f64() / calls as f64;
        let batch_target = measure.as_secs_f64() / samples as f64;
        iters_per_batch = ((batch_target / per_call).ceil() as u64).max(1);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters_per_batch {
            f();
        }
        per_iter.push(t.elapsed().as_secs_f64() / iters_per_batch as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{name:40} {:>12.3} us/iter  ({iters_per_batch} iters x {samples} batches)",
        median * 1e6
    );
}

fn ramp(shape: &[usize]) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        (0..n).map(|i| ((i * 31) % 17) as f32 / 8.0 - 1.0).collect(),
        shape,
    )
}

fn conv_pair() -> (Conv2d, ApproxConv2d, ApproxConv2d) {
    let lut = Arc::new(TruncatedMultiplier::new(8, 8).to_lut());
    let ste = Arc::new(GradientLut::build(&lut, GradientMode::Ste));
    let diff = Arc::new(GradientLut::build(&lut, GradientMode::difference_based(16)));
    let spec = Conv2dSpec::same(8, 16, 3);
    let float_conv = Conv2d::new(8, 16, 3, 1, 1, 1);
    let w = float_conv.weight().value.clone();
    let mk = |g: Arc<GradientLut>| {
        ApproxConv2d::with_params(
            spec,
            w.clone(),
            Tensor::zeros(&[16]),
            lut.clone(),
            g,
            QuantConfig::default(),
        )
    };
    (float_conv, mk(ste), mk(diff))
}

fn main() {
    println!("kernel micro-benchmarks (median per iteration)\n");

    let (mut float_conv, mut ste_conv, mut diff_conv) = conv_pair();
    let x = ramp(&[2, 8, 12, 12]);
    bench("conv_forward/float", || {
        black_box(float_conv.forward(black_box(&x), true));
    });
    bench("conv_forward/lut", || {
        black_box(ste_conv.forward(black_box(&x), true));
    });

    let g = ramp(&[2, 16, 12, 12]);
    float_conv.forward(&x, true);
    ste_conv.forward(&x, true);
    diff_conv.forward(&x, true);
    bench("conv_backward/float", || {
        black_box(float_conv.backward(black_box(&g)));
    });
    bench("conv_backward/lut_ste", || {
        black_box(ste_conv.backward(black_box(&g)));
    });
    bench("conv_backward/lut_diff", || {
        black_box(diff_conv.backward(black_box(&g)));
    });

    let lut = TruncatedMultiplier::new(8, 8).to_lut();
    bench("gradient_lut_build_8bit/ste", || {
        black_box(GradientLut::build(black_box(&lut), GradientMode::Ste));
    });
    bench("gradient_lut_build_8bit/diff_hws16", || {
        black_box(GradientLut::build(
            black_box(&lut),
            GradientMode::difference_based(16),
        ));
    });
    bench("gradient_lut_build_8bit/raw", || {
        black_box(GradientLut::build(
            black_box(&lut),
            GradientMode::RawDifference,
        ));
    });

    let m = TruncatedMultiplier::new(8, 8);
    bench("multiplier_analysis_8bit/build_product_lut", || {
        black_box(m.to_lut());
    });
    bench("multiplier_analysis_8bit/exhaustive_error_metrics", || {
        black_box(ErrorMetrics::exhaustive(black_box(&lut)));
    });
}
