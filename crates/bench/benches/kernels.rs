//! Criterion micro-benchmarks of the retraining kernels.
//!
//! Backs the paper's runtime discussion (Sec. V-B): the difference-based
//! method costs extra over STE in (a) building the gradient LUTs and
//! (b) the LUT-indexed backward pass. Measured here:
//!
//! * float vs LUT convolution forward;
//! * LUT backward with STE vs difference-based gradient tables;
//! * gradient-LUT construction (STE vs difference-based vs raw);
//! * product-LUT extraction and exhaustive error metrics.
//!
//! Run with `cargo bench -p appmult-bench`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use appmult_mult::{ErrorMetrics, Multiplier, TruncatedMultiplier};
use appmult_nn::layers::{Conv2d, Conv2dSpec};
use appmult_nn::{Module, Tensor};
use appmult_retrain::{ApproxConv2d, GradientLut, GradientMode, QuantConfig};

fn ramp(shape: &[usize]) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        (0..n).map(|i| ((i * 31) % 17) as f32 / 8.0 - 1.0).collect(),
        shape,
    )
}

fn conv_pair() -> (Conv2d, ApproxConv2d, ApproxConv2d) {
    let lut = Arc::new(TruncatedMultiplier::new(8, 8).to_lut());
    let ste = Arc::new(GradientLut::build(&lut, GradientMode::Ste));
    let diff = Arc::new(GradientLut::build(&lut, GradientMode::difference_based(16)));
    let spec = Conv2dSpec::same(8, 16, 3);
    let float_conv = Conv2d::new(8, 16, 3, 1, 1, 1);
    let w = float_conv.weight().value.clone();
    let mk = |g: Arc<GradientLut>| {
        ApproxConv2d::with_params(
            spec,
            w.clone(),
            Tensor::zeros(&[16]),
            lut.clone(),
            g,
            QuantConfig::default(),
        )
    };
    (float_conv, mk(ste), mk(diff))
}

fn bench_forward(c: &mut Criterion) {
    let (mut float_conv, mut ste_conv, _) = conv_pair();
    let x = ramp(&[2, 8, 12, 12]);
    let mut group = c.benchmark_group("conv_forward");
    group.bench_function("float", |b| b.iter(|| float_conv.forward(&x, true)));
    group.bench_function("lut", |b| b.iter(|| ste_conv.forward(&x, true)));
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let (mut float_conv, mut ste_conv, mut diff_conv) = conv_pair();
    let x = ramp(&[2, 8, 12, 12]);
    let g = ramp(&[2, 16, 12, 12]);
    float_conv.forward(&x, true);
    ste_conv.forward(&x, true);
    diff_conv.forward(&x, true);
    let mut group = c.benchmark_group("conv_backward");
    group.bench_function("float", |b| b.iter(|| float_conv.backward(&g)));
    group.bench_function("lut_ste", |b| b.iter(|| ste_conv.backward(&g)));
    group.bench_function("lut_diff", |b| b.iter(|| diff_conv.backward(&g)));
    group.finish();
}

fn bench_gradient_lut_build(c: &mut Criterion) {
    let lut = TruncatedMultiplier::new(8, 8).to_lut();
    let mut group = c.benchmark_group("gradient_lut_build_8bit");
    group.bench_function("ste", |b| {
        b.iter(|| GradientLut::build(&lut, GradientMode::Ste))
    });
    group.bench_function("diff_hws16", |b| {
        b.iter(|| GradientLut::build(&lut, GradientMode::difference_based(16)))
    });
    group.bench_function("raw", |b| {
        b.iter(|| GradientLut::build(&lut, GradientMode::RawDifference))
    });
    group.finish();
}

fn bench_lut_and_metrics(c: &mut Criterion) {
    let m = TruncatedMultiplier::new(8, 8);
    let lut = m.to_lut();
    let mut group = c.benchmark_group("multiplier_analysis_8bit");
    group.bench_function("build_product_lut", |b| b.iter(|| m.to_lut()));
    group.bench_function("exhaustive_error_metrics", |b| {
        b.iter(|| ErrorMetrics::exhaustive(&lut))
    });
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_forward, bench_backward, bench_gradient_lut_build, bench_lut_and_metrics
}
criterion_main!(kernels);
