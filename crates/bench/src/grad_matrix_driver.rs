//! Driver for the `grad_matrix` binary: the journal-extension estimator
//! matrix (estimator × multiplier × unsigned/signed) on a shared LeNet
//! retraining workload, emitting `results/GRAD_MATRIX.json`
//! (`appmult-gradmatrix/v1`).
//!
//! Every cell retrains the same pretrained LeNet under one
//! (design, scheme, estimator) triple and records the retrained accuracy
//! plus a table-level gradient-error diagnostic. All arithmetic goes
//! through the bit-identical parallel paths (LUT GEMMs, gradient-table
//! builds), so [`GradMatrixOutcome::grid_json`] is byte-identical at any
//! `APPMULT_THREADS` — the CI determinism gate `cmp`s two runs.

use std::sync::Arc;

use appmult_mult::{Multiplier, MultiplierLut, SignMagnitudeMultiplier, TruncatedMultiplier};
use appmult_pool::Pool;
use appmult_retrain::{GradientLut, GradientMode, QuantScheme, SmoothingKernel};

use crate::{
    markdown_table, pretrain_float, retrain_with_multiplier_scheme, ModelKind, Scale, Workload,
};

/// Version tag in the `schema` field of `results/GRAD_MATRIX.json`.
pub const GRAD_MATRIX_SCHEMA_VERSION: &str = "appmult-gradmatrix/v1";

/// One estimator column of the matrix. Window parameters come from the
/// run config so a whole sweep shares one setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Straight-through (accurate-multiplier) baseline.
    Ste,
    /// The paper's box-smoothed difference estimator (Eqs. 4-6).
    Diff,
    /// Triangular-kernel smoothing (journal extension).
    Tri,
    /// Discrete-Gaussian-kernel smoothing (journal extension).
    Gauss,
    /// Least-squares local linear fit (journal extension).
    Lsq,
    /// Operand-marginal-weighted smoothing (journal extension).
    Marginal,
    /// ApproxTrain-style per-row linear surrogate.
    Surrogate,
}

impl EstimatorKind {
    /// Every estimator column in canonical report order.
    pub fn all() -> Vec<EstimatorKind> {
        vec![
            EstimatorKind::Ste,
            EstimatorKind::Diff,
            EstimatorKind::Tri,
            EstimatorKind::Gauss,
            EstimatorKind::Lsq,
            EstimatorKind::Marginal,
            EstimatorKind::Surrogate,
        ]
    }

    /// Which estimator family the column belongs to: `"ste"`,
    /// `"difference"` (everything built from local differences of the
    /// stored table), or `"surrogate"`.
    pub fn family(self) -> &'static str {
        match self {
            EstimatorKind::Ste => "ste",
            EstimatorKind::Surrogate => "surrogate",
            _ => "difference",
        }
    }

    /// Resolves the concrete [`GradientMode`] for a design of the given
    /// bit width under the run config's window settings.
    pub fn mode(self, cfg: &GradMatrixConfig, bits: u32) -> GradientMode {
        match self {
            EstimatorKind::Ste => GradientMode::Ste,
            EstimatorKind::Diff => GradientMode::difference_based(cfg.hws),
            EstimatorKind::Tri => {
                GradientMode::difference_kernel(cfg.hws, SmoothingKernel::Triangular)
            }
            EstimatorKind::Gauss => {
                GradientMode::difference_kernel(cfg.hws, SmoothingKernel::Gaussian)
            }
            EstimatorKind::Lsq => GradientMode::least_squares(cfg.lsq_window),
            EstimatorKind::Marginal => {
                let (w_probs, x_probs) = appmult_dse::default_marginals(bits);
                GradientMode::marginal_weighted(cfg.hws, w_probs, x_probs)
            }
            EstimatorKind::Surrogate => GradientMode::Surrogate,
        }
    }
}

/// One multiplier row of the matrix: a LUT plus the quantization scheme
/// it is consumed under.
#[derive(Debug, Clone)]
pub struct DesignSpec {
    /// Report name (the LUT's own name).
    pub name: String,
    /// Product LUT (offset-binary entries for signed designs).
    pub lut: Arc<MultiplierLut>,
    /// Code mapping the forward/backward passes run under.
    pub scheme: QuantScheme,
}

impl DesignSpec {
    /// Unsigned truncated design `mul{bits}u_rm{trunc}`.
    pub fn unsigned_truncated(bits: u32, trunc: u32) -> Self {
        let lut = TruncatedMultiplier::new(bits, trunc).to_lut();
        Self {
            name: lut.name().to_string(),
            lut: Arc::new(lut),
            scheme: QuantScheme::Unsigned,
        }
    }

    /// Signed sign-magnitude design over a truncated core, exported as an
    /// offset-binary LUT (`mul{bits}u_rm{trunc}_signed`). With
    /// `bits == 8` this is the signed int8 retraining path.
    pub fn signed_truncated(bits: u32, trunc: u32) -> Self {
        let signed = SignMagnitudeMultiplier::new(TruncatedMultiplier::new(bits, trunc));
        let lut = signed.to_offset_lut();
        Self {
            name: lut.name().to_string(),
            lut: Arc::new(lut),
            scheme: QuantScheme::SignedOffset,
        }
    }
}

/// Knobs of one `grad_matrix` run.
#[derive(Debug, Clone)]
pub struct GradMatrixConfig {
    /// Master seed (dataset + model init).
    pub seed: u64,
    /// Half window size shared by the smoothing-family estimators.
    pub hws: u32,
    /// Regression half window of the least-squares estimator.
    pub lsq_window: u32,
    /// Float pretraining epochs of the shared LeNet.
    pub pretrain_epochs: usize,
    /// Retraining epochs per cell.
    pub retrain_epochs: usize,
    /// Estimator columns.
    pub estimators: Vec<EstimatorKind>,
    /// Multiplier rows.
    pub designs: Vec<DesignSpec>,
}

impl GradMatrixConfig {
    /// CI-smoke defaults: the full seven-estimator family over the
    /// paper's `mul7u_rm6` (unsigned) and the signed int8 design
    /// `mul8u_rm6_signed`, with short schedules sized for a CI job.
    pub fn smoke(seed: u64) -> Self {
        Self {
            seed,
            hws: 4,
            lsq_window: 3,
            pretrain_epochs: 3,
            retrain_epochs: 3,
            estimators: EstimatorKind::all(),
            designs: vec![
                DesignSpec::unsigned_truncated(7, 6),
                DesignSpec::signed_truncated(8, 6),
            ],
        }
    }
}

/// One (design, estimator) cell of the matrix.
#[derive(Debug, Clone)]
pub struct GradMatrixCell {
    /// Design name.
    pub design: String,
    /// Scheme key (`"unsigned"` / `"signed"`).
    pub scheme: &'static str,
    /// Operand bit width.
    pub bits: u32,
    /// Estimator key ([`GradientMode::key`]).
    pub estimator: String,
    /// Estimator family (`"ste"` / `"difference"` / `"surrogate"`).
    pub family: &'static str,
    /// Quantized accuracy before retraining, percent.
    pub initial_pct: f64,
    /// Accuracy after retraining, percent.
    pub final_pct: f64,
    /// Normalized RMS deviation of the estimator's `dAM/dX` table from
    /// the raw central difference of the stored LUT (the local slope the
    /// estimators approximate). Diagnostic, not a selection objective.
    pub grad_err: f64,
}

/// Everything a caller (binary, CI job, schema test) needs from one run.
#[derive(Debug)]
pub struct GradMatrixOutcome {
    /// Full `results/GRAD_MATRIX.json` contents (includes threads/kernel).
    pub json: String,
    /// Machine-independent grid document (byte-identical across thread
    /// counts; the CI determinism gate `cmp`s two of these).
    pub grid_json: String,
    /// All cells in (design-major, estimator-minor) order.
    pub cells: Vec<GradMatrixCell>,
    /// Float (accurate-multiplier) test accuracy of the shared LeNet,
    /// percent.
    pub float_top1_pct: f64,
    /// Human-readable matrix summary (markdown).
    pub summary: String,
}

impl GradMatrixOutcome {
    /// Whether, for at least one design, some difference-family estimator
    /// retrains to strictly higher accuracy than STE — the paper's core
    /// claim, carried over to the estimator family and gated in CI.
    pub fn difference_beats_ste(&self) -> bool {
        self.cells.iter().any(|ste| {
            ste.family == "ste"
                && self.cells.iter().any(|c| {
                    c.design == ste.design
                        && c.family == "difference"
                        && c.final_pct > ste.final_pct
                })
        })
    }

    /// The cell of `design` × `estimator`, if present.
    pub fn cell(&self, design: &str, estimator: &str) -> Option<&GradMatrixCell> {
        self.cells
            .iter()
            .find(|c| c.design == design && c.estimator == estimator)
    }
}

/// Normalized RMS deviation of `grads`' `dAM/dX` table from the raw
/// central difference of `lut` — how far the estimator strays from the
/// stored function's local slope. Serial f64 accumulation in index
/// order, so the value is machine-independent.
pub fn gradient_table_error(lut: &MultiplierLut, grads: &GradientLut) -> f64 {
    let raw = GradientLut::build_with_pool(lut, GradientMode::RawDifference, Pool::serial());
    let est = grads.wrt_x_table();
    let reference = raw.wrt_x_table();
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&e, &r) in est.iter().zip(reference.iter()) {
        let d = f64::from(e) - f64::from(r);
        num += d * d;
        den += f64::from(r) * f64::from(r);
    }
    (num / den.max(1e-12)).sqrt()
}

/// Runs the full matrix: one shared pretrained LeNet, one retraining per
/// (design, estimator) cell, serialized reports.
///
/// # Panics
///
/// Panics if the config has no designs or estimators.
pub fn run_grad_matrix(cfg: &GradMatrixConfig) -> GradMatrixOutcome {
    assert!(!cfg.designs.is_empty(), "config has no designs");
    assert!(!cfg.estimators.is_empty(), "config has no estimators");
    let obs = appmult_obs::global();
    let _span = obs.span("grad_matrix.run");

    let mut scale = Scale::cpu_cifar10();
    scale.model.seed = cfg.seed;
    scale.data.seed = cfg.seed;
    scale.pretrain_epochs = cfg.pretrain_epochs;
    scale.retrain_epochs = cfg.retrain_epochs;
    let workload = Workload::generate(&scale);
    let (mut pretrained, float_top1) = pretrain_float(ModelKind::LeNet, &scale, &workload);

    let mut cells = Vec::with_capacity(cfg.designs.len() * cfg.estimators.len());
    for design in &cfg.designs {
        for &estimator in &cfg.estimators {
            let _cell_span = obs.span("grad_matrix.cell");
            let mode = estimator.mode(cfg, design.lut.bits());
            let grads = GradientLut::try_build_for(
                &design.lut,
                mode.clone(),
                design.scheme,
                Pool::global(),
            )
            .expect("estimator tables rejected");
            let grad_err = gradient_table_error(&design.lut, &grads);
            let outcome = retrain_with_multiplier_scheme(
                ModelKind::LeNet,
                &scale,
                &workload,
                &mut pretrained,
                &design.lut,
                mode.clone(),
                design.scheme,
                None,
            );
            obs.counter_add("grad_matrix.cells", 1);
            cells.push(GradMatrixCell {
                design: design.name.clone(),
                scheme: design.scheme.key(),
                bits: design.lut.bits(),
                estimator: mode.key(),
                family: estimator.family(),
                initial_pct: outcome.initial_pct(),
                final_pct: outcome.final_pct(),
                grad_err,
            });
        }
    }

    let threads = Pool::global().threads();
    let kernel = appmult_kernels::Kernel::global().label();
    let json = grad_matrix_json(cfg, &cells, float_top1 * 100.0, Some((threads, &kernel)));
    let grid_json = grad_matrix_json(cfg, &cells, float_top1 * 100.0, None);

    let estimator_keys: Vec<String> = cfg
        .estimators
        .iter()
        .map(|e| e.mode(cfg, cfg.designs[0].lut.bits()).key())
        .collect();
    let mut header: Vec<&str> = vec!["design", "scheme"];
    for k in &estimator_keys {
        header.push(k);
    }
    let rows: Vec<Vec<String>> = cfg
        .designs
        .iter()
        .map(|d| {
            let mut row = vec![d.name.clone(), d.scheme.key().to_string()];
            for &e in &cfg.estimators {
                let key = e.mode(cfg, d.lut.bits()).key();
                let cell = cells
                    .iter()
                    .find(|c| c.design == d.name && c.estimator == key)
                    .expect("cell exists");
                row.push(format!("{:.2}", cell.final_pct));
            }
            row
        })
        .collect();
    let summary = markdown_table(&header, &rows);

    GradMatrixOutcome {
        json,
        grid_json,
        cells,
        float_top1_pct: float_top1 * 100.0,
        summary,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a run. With `env: Some((threads, kernel))` this is the full
/// `results/GRAD_MATRIX.json`; with `None` the machine-independent grid
/// document (the CI determinism artefact).
fn grad_matrix_json(
    cfg: &GradMatrixConfig,
    cells: &[GradMatrixCell],
    float_top1_pct: f64,
    env: Option<(usize, &str)>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema\": \"{GRAD_MATRIX_SCHEMA_VERSION}\",\n"
    ));
    out.push_str("  \"config\": {\n");
    out.push_str(&format!("    \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("    \"hws\": {},\n", cfg.hws));
    out.push_str(&format!("    \"lsq_window\": {},\n", cfg.lsq_window));
    out.push_str(&format!(
        "    \"pretrain_epochs\": {},\n",
        cfg.pretrain_epochs
    ));
    out.push_str(&format!("    \"retrain_epochs\": {}", cfg.retrain_epochs));
    if let Some((threads, kernel)) = env {
        out.push_str(&format!(",\n    \"threads\": {threads},\n"));
        out.push_str(&format!("    \"kernel\": \"{}\"\n", json_escape(kernel)));
    } else {
        out.push('\n');
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"float_top1_pct\": {float_top1_pct},\n"));
    out.push_str(&format!(
        "  \"float_top1_pct_bits\": {},\n",
        float_top1_pct.to_bits()
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"design\": \"{}\",\n",
            json_escape(&c.design)
        ));
        out.push_str(&format!("      \"scheme\": \"{}\",\n", c.scheme));
        out.push_str(&format!("      \"bits\": {},\n", c.bits));
        out.push_str(&format!(
            "      \"estimator\": \"{}\",\n",
            json_escape(&c.estimator)
        ));
        out.push_str(&format!("      \"family\": \"{}\",\n", c.family));
        for (key, value) in [
            ("initial_pct", c.initial_pct),
            ("final_pct", c.final_pct),
            ("grad_err", c.grad_err),
        ] {
            out.push_str(&format!("      \"{key}\": {value},\n"));
            out.push_str(&format!("      \"{key}_bits\": {}", value.to_bits()));
            if key == "grad_err" {
                out.push('\n');
            } else {
                out.push_str(",\n");
            }
        }
        out.push_str("    }");
        out.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_keys_cover_the_family() {
        let cfg = GradMatrixConfig::smoke(1);
        let keys: Vec<String> = EstimatorKind::all()
            .into_iter()
            .map(|e| e.mode(&cfg, 7).key())
            .collect();
        assert_eq!(
            keys,
            [
                "ste",
                "diff_h4",
                "tri_h4",
                "gauss_h4",
                "lsq_w3",
                "marginal_h4",
                "surrogate"
            ]
        );
    }

    #[test]
    fn design_specs_name_their_luts() {
        let u = DesignSpec::unsigned_truncated(7, 6);
        assert_eq!(u.name, "mul7u_rm6");
        assert_eq!(u.scheme, QuantScheme::Unsigned);
        let s = DesignSpec::signed_truncated(8, 6);
        assert_eq!(s.name, "mul8u_rm6_signed");
        assert_eq!(s.scheme, QuantScheme::SignedOffset);
        assert_eq!(s.lut.bits(), 8);
    }

    #[test]
    fn gradient_table_error_is_zero_for_raw_difference() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let raw = GradientLut::build(&lut, GradientMode::RawDifference);
        assert_eq!(gradient_table_error(&lut, &raw), 0.0);
        // STE ignores the staircase, so its deviation is strictly larger.
        let ste = GradientLut::build(&lut, GradientMode::Ste);
        assert!(gradient_table_error(&lut, &ste) > 0.0);
    }
}
