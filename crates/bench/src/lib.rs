//! Shared harness for the paper-reproduction experiments.
//!
//! One binary per table/figure lives in `src/bin/`:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table I — multiplier area/delay/power + ER/NMED/MaxED + HWS |
//! | `table2` | Table II — STE vs difference-based retraining accuracy |
//! | `fig3`   | Fig. 3 — AppMult slice, smoothed slice, both gradients |
//! | `fig5`   | Fig. 5 — accuracy vs normalized power trade-off |
//! | `fig6`   | Fig. 6 — top-5 accuracy curves on the CIFAR-100-like task |
//! | `hws_select` | Table I HWS column — the Sec. V-A selection sweep |
//! | `fault_sweep` | Retraining accuracy vs injected hardware fault count |
//! | `par_scale` | Serial-vs-parallel throughput of the LUT kernels |
//! | `appmult-lint` | Static verification sweep over the zoo (`results/LINT.json`) |
//! | `dse` | Closed-loop multiplier design-space exploration (`results/DSE.json`) |
//!
//! All experiments run on deterministic synthetic data (see
//! `appmult-data`) at a CPU-friendly scale by default; pass `--full` for
//! paper-scale architecture/epoch settings (slow on a laptop).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dse_driver;
pub mod grad_matrix_driver;
pub mod serve_driver;

use std::sync::Arc;

use appmult_data::{DatasetConfig, SyntheticDataset};
use appmult_models::{copy_params, resnet, vgg, ConvMode, ModelConfig, ResNetDepth, VggDepth};
use appmult_mult::zoo::ZooEntry;
use appmult_mult::{Multiplier, MultiplierLut};
use appmult_nn::layers::Sequential;
use appmult_nn::optim::{Adam, StepSchedule};
use appmult_obs::ObsSink;
use appmult_retrain::{
    evaluate, retrain, Batch, GradientLut, GradientMode, QuantConfig, QuantScheme,
    ResiliencePolicy, RetrainConfig, RetrainHistory,
};

/// Which network family an experiment trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// VGG family (Table II top).
    Vgg(VggDepth),
    /// ResNet family (Table II bottom, Figs. 5-6).
    ResNet(ResNetDepth),
    /// LeNet (HWS selection proxy).
    LeNet,
}

impl ModelKind {
    /// Builds the model with the given convolution mode.
    pub fn build(&self, base: &ModelConfig, conv: ConvMode) -> Sequential {
        let cfg = base.clone().with_conv(conv);
        match self {
            ModelKind::Vgg(d) => vgg(*d, &cfg),
            ModelKind::ResNet(d) => resnet(*d, &cfg),
            ModelKind::LeNet => appmult_models::lenet5(&cfg),
        }
    }
}

/// Scale of an experiment run.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Dataset configuration.
    pub data: DatasetConfig,
    /// Model base configuration (conv mode filled per run).
    pub model: ModelConfig,
    /// Float pretraining epochs (Fig. 1: "pre-trained model").
    pub pretrain_epochs: usize,
    /// AppMult-aware retraining epochs.
    pub retrain_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate for pretraining.
    pub pretrain_lr: f32,
    /// Learning-rate schedule for retraining.
    pub schedule: StepSchedule,
}

impl Scale {
    /// CPU-scale defaults: 16x16 synthetic CIFAR-10-like data, width-/4
    /// models, short schedules. Finishes in minutes on one core.
    pub fn cpu_cifar10() -> Self {
        Self {
            data: harder(DatasetConfig::small(10, 64, 48)),
            model: ModelConfig {
                num_classes: 10,
                input_channels: 3,
                input_hw: (16, 16),
                width_div: 4,
                seed: 42,
                conv: ConvMode::Accurate,
            },
            pretrain_epochs: 8,
            retrain_epochs: 10,
            batch_size: 32,
            pretrain_lr: 2e-3,
            schedule: StepSchedule::new(vec![(1, 1e-3), (5, 5e-4), (8, 2.5e-4)]),
        }
    }

    /// CPU-scale CIFAR-100-like settings (Fig. 6).
    pub fn cpu_cifar100() -> Self {
        // 100 classes on 16x16 synthetic data: keep the noise moderate so a
        // width-scaled ResNet can actually learn the task.
        let mut data = DatasetConfig::small(100, 16, 4);
        data.noise = 0.55;
        data.max_shift = 3;
        Self {
            data,
            model: ModelConfig {
                num_classes: 100,
                input_channels: 3,
                input_hw: (16, 16),
                width_div: 16,
                seed: 42,
                conv: ConvMode::Accurate,
            },
            pretrain_epochs: 10,
            retrain_epochs: 8,
            batch_size: 40,
            pretrain_lr: 2e-3,
            schedule: StepSchedule::new(vec![(1, 1e-3), (6, 5e-4)]),
        }
    }

    /// Paper-scale settings: 32x32 data, full-width models, the paper's
    /// 30-epoch schedule. Only practical on a beefy machine.
    pub fn paper_cifar10() -> Self {
        Self {
            data: DatasetConfig::cifar10_like(500, 100),
            model: ModelConfig::cifar10(),
            pretrain_epochs: 30,
            retrain_epochs: 30,
            batch_size: 64,
            pretrain_lr: 1e-3,
            schedule: StepSchedule::paper_default(),
        }
    }
}

/// Raises the noise/jitter of a dataset so accuracies land mid-range
/// (a saturated task cannot separate gradient rules).
fn harder(mut cfg: DatasetConfig) -> DatasetConfig {
    cfg.noise = 1.15;
    cfg.max_shift = 4;
    cfg
}

/// Pre-generated batches for one experiment.
pub struct Workload {
    /// Training batches.
    pub train: Vec<Batch>,
    /// Test batches.
    pub test: Vec<Batch>,
}

impl Workload {
    /// Generates the dataset and batches of a scale.
    pub fn generate(scale: &Scale) -> Self {
        let data = SyntheticDataset::generate(&scale.data);
        Self {
            train: data.train_batches(scale.batch_size),
            test: data.test_batches(scale.batch_size),
        }
    }
}

/// Pretrains a float (accurate) model per the Fig. 1 flow, returning the
/// trained model and its float test accuracy.
pub fn pretrain_float(kind: ModelKind, scale: &Scale, workload: &Workload) -> (Sequential, f64) {
    let mut model = kind.build(&scale.model, ConvMode::Accurate);
    let mut opt = Adam::new(scale.pretrain_lr);
    let cfg = RetrainConfig {
        epochs: scale.pretrain_epochs,
        schedule: StepSchedule::new(vec![(1, scale.pretrain_lr)]),
        eval_every: usize::MAX,
        resilience: None,
        obs: ObsSink::null(),
    };
    let history = retrain(&mut model, &mut opt, &cfg, &workload.train, &workload.test);
    let top1 = history.final_top1();
    (model, top1)
}

/// Result of retraining one (multiplier, gradient mode) pair.
#[derive(Debug, Clone)]
pub struct RetrainOutcome {
    /// Top-1 accuracy of the quantized AppMult model before retraining
    /// (Table II "initial accuracy").
    pub initial_top1: f64,
    /// Full retraining history.
    pub history: RetrainHistory,
}

impl RetrainOutcome {
    /// Final top-1 accuracy in percent.
    pub fn final_pct(&self) -> f64 {
        self.history.final_top1() * 100.0
    }

    /// Initial accuracy in percent.
    pub fn initial_pct(&self) -> f64 {
        self.initial_top1 * 100.0
    }
}

/// Converts the pretrained float model to the AppMult version (transplanting
/// weights), measures initial accuracy, and retrains with `mode`.
pub fn retrain_with_multiplier(
    kind: ModelKind,
    scale: &Scale,
    workload: &Workload,
    pretrained: &mut Sequential,
    lut: &Arc<MultiplierLut>,
    mode: GradientMode,
) -> RetrainOutcome {
    retrain_with_multiplier_resilient(kind, scale, workload, pretrained, lut, mode, None)
}

/// Like [`retrain_with_multiplier`], with an optional resilience policy —
/// used by the faulty-hardware sweeps, where defective products routinely
/// blow up the loss.
pub fn retrain_with_multiplier_resilient(
    kind: ModelKind,
    scale: &Scale,
    workload: &Workload,
    pretrained: &mut Sequential,
    lut: &Arc<MultiplierLut>,
    mode: GradientMode,
    resilience: Option<ResiliencePolicy>,
) -> RetrainOutcome {
    retrain_with_multiplier_scheme(
        kind,
        scale,
        workload,
        pretrained,
        lut,
        mode,
        QuantScheme::Unsigned,
        resilience,
    )
}

/// The full retraining entry point: explicit quantization scheme, so the
/// signed int8 path (`SignMagnitudeMultiplier::to_offset_lut` +
/// [`QuantScheme::SignedOffset`]) runs the same Fig. 1 flow as the paper's
/// unsigned experiments. Gradient tables are built under the same scheme.
#[allow(clippy::too_many_arguments)]
pub fn retrain_with_multiplier_scheme(
    kind: ModelKind,
    scale: &Scale,
    workload: &Workload,
    pretrained: &mut Sequential,
    lut: &Arc<MultiplierLut>,
    mode: GradientMode,
    scheme: QuantScheme,
    resilience: Option<ResiliencePolicy>,
) -> RetrainOutcome {
    let grads = Arc::new(
        GradientLut::try_build_for(lut, mode, scheme, appmult_pool::Pool::global())
            .expect("gradient tables rejected"),
    );
    let config = QuantConfig {
        scheme,
        ..QuantConfig::default()
    };
    let conv = ConvMode::Approximate {
        lut: lut.clone(),
        grads,
        config,
    };
    let mut model = kind.build(&scale.model, conv);
    copy_params(pretrained, &mut model);
    let (initial_top1, _) = evaluate(&mut model, &workload.test);
    let mut opt = Adam::new(1e-3);
    let cfg = RetrainConfig {
        epochs: scale.retrain_epochs,
        schedule: scale.schedule.clone(),
        eval_every: 1,
        resilience,
        obs: ObsSink::null(),
    };
    let history = retrain(&mut model, &mut opt, &cfg, &workload.train, &workload.test);
    RetrainOutcome {
        initial_top1,
        history,
    }
}

/// STE-vs-ours comparison row for one multiplier (one Table II line).
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Multiplier name.
    pub name: String,
    /// Initial (pre-retraining) accuracy, percent.
    pub initial_pct: f64,
    /// Accuracy after STE retraining, percent.
    pub ste_pct: f64,
    /// Accuracy after difference-based retraining, percent.
    pub ours_pct: f64,
    /// Normalized power (to mul8u_acc) of the multiplier.
    pub norm_power: f64,
    /// Normalized delay (to mul8u_acc).
    pub norm_delay: f64,
    /// NMED in percent (measured).
    pub nmed_pct: f64,
}

impl ComparisonRow {
    /// `ours - STE` improvement in accuracy points.
    pub fn improvement(&self) -> f64 {
        self.ours_pct - self.ste_pct
    }
}

/// Selects the half window size for a multiplier with the paper's Sec. V-A
/// procedure: short LeNet proxy retrainings on the same workload, smallest
/// final training loss wins.
///
/// Returns an [`appmult_retrain::HwsError`] when every proxy run diverges
/// (e.g. for a heavily faulted multiplier); callers should fall back to a
/// default HWS rather than abort the whole sweep.
pub fn select_hws_by_proxy(
    lut: &Arc<MultiplierLut>,
    scale: &Scale,
    workload: &Workload,
    pretrained_lenet: &mut Sequential,
) -> Result<appmult_retrain::HwsSelection, appmult_retrain::HwsError> {
    let mut proxy_scale = scale.clone();
    proxy_scale.retrain_epochs = 2;
    let candidates = appmult_retrain::candidates_for_bits(lut.bits());
    appmult_retrain::select_hws(&candidates, |hws| {
        let outcome = retrain_with_multiplier(
            ModelKind::LeNet,
            &proxy_scale,
            workload,
            pretrained_lenet,
            lut,
            GradientMode::difference_based(hws),
        );
        outcome.history.final_train_loss()
    })
}

/// Runs the full STE-vs-ours comparison for one zoo entry on a shared
/// pretrained model, using the given half window size for the
/// difference-based gradient.
pub fn compare_entry(
    kind: ModelKind,
    scale: &Scale,
    workload: &Workload,
    pretrained: &mut Sequential,
    entry: &ZooEntry,
    hws: u32,
) -> ComparisonRow {
    let lut = Arc::new(entry.multiplier.to_lut());
    let metrics = appmult_mult::ErrorMetrics::exhaustive(&lut);
    let ste = retrain_with_multiplier(kind, scale, workload, pretrained, &lut, GradientMode::Ste);
    let ours = retrain_with_multiplier(
        kind,
        scale,
        workload,
        pretrained,
        &lut,
        GradientMode::difference_based(hws),
    );
    let (power, delay) = hardware_normalized(entry);
    ComparisonRow {
        name: entry.name.to_string(),
        initial_pct: ste.initial_pct(),
        ste_pct: ste.final_pct(),
        ours_pct: ours.final_pct(),
        norm_power: power,
        norm_delay: delay,
        nmed_pct: metrics.nmed_pct(),
    }
}

/// Normalized (power, delay) of a zoo entry relative to `mul8u_acc`.
///
/// Entries with a gate-level netlist are costed with the calibrated
/// ASAP7-like model; behavioural-only surrogates fall back to the paper's
/// published values (marked in Table I output).
pub fn hardware_normalized(entry: &ZooEntry) -> (f64, f64) {
    let reference =
        appmult_circuit::CostModel::asap7().estimate(&appmult_circuit::MultiplierCircuit::array(8));
    match entry.multiplier.circuit() {
        Some(circuit) => {
            let cost = appmult_circuit::CostModel::asap7().estimate(&circuit);
            (
                cost.power_uw / reference.power_uw,
                cost.delay_ps / reference.delay_ps,
            )
        }
        None => (entry.paper.power_uw / 22.93, entry.paper.delay_ps / 730.1),
    }
}

/// Minimal CLI flag reader: `--flag` presence and `--key value` pairs.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn from_env() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit list (for tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Self { raw }
    }

    /// Whether `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == &format!("--{name}"))
    }

    /// The value following `--name`, if any.
    pub fn value(&self, name: &str) -> Option<&str> {
        let key = format!("--{name}");
        self.raw
            .windows(2)
            .find(|w| w[0] == key)
            .map(|w| w[1].as_str())
    }

    /// Parsed value following `--name`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.value(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Artifacts of one observability-demo retraining run (see [`run_obs_demo`]).
#[derive(Debug)]
pub struct ObsDemo {
    /// Full `appmult-obs/v1` report (the contents of `results/OBS.json`).
    pub report_json: String,
    /// Structured event stream, one JSON object per line.
    pub events_jsonl: String,
    /// End-of-run plain-text summary table.
    pub summary: String,
    /// The retraining history of the demo run.
    pub history: appmult_retrain::RetrainHistory,
}

/// Retrains a small two-layer AppMult model with full observability on and
/// returns the recorded artifacts.
///
/// The run is deliberately eventful so every signal class shows up in the
/// report: a one-epoch learning-rate spike blows the loss up mid-run, which
/// the aggressive [`ResiliencePolicy`] answers with norm clipping and a
/// divergence rollback — so the report carries per-layer forward/backward
/// latency histograms, per-epoch loss/gradient-norm events, LUT build and
/// lookup counters, per-worker busy time, and nonzero resilience
/// intervention counts.
pub fn run_obs_demo() -> ObsDemo {
    let obs = ObsSink::recording();
    // The hot kernels (GEMM, LUT builds, the pool) report via the
    // process-wide sink; the retraining loop itself via the config handle.
    appmult_obs::set_global(&obs);
    // Pre-register the intervention inventory so the report always carries
    // every counter, including those that stay at zero on a healthy run.
    for counter in [
        "resilience.rollbacks",
        "resilience.scrubbed_grads",
        "resilience.norm_clips",
        "observer.rejections",
    ] {
        obs.counter_add(counter, 0);
    }

    let mut data_cfg = DatasetConfig::small(3, 8, 6);
    data_cfg.channels = 1;
    data_cfg.hw = (8, 8);
    let data = SyntheticDataset::generate(&data_cfg);
    let train = data.train_batches(8);
    let test = data.test_batches(8);

    let lut = Arc::new(appmult_mult::zoo::mul7u_rm6().to_lut());
    let grads = Arc::new(GradientLut::build(&lut, GradientMode::difference_based(8)));
    let mut model = Sequential::new()
        .push(appmult_nn::layers::Flatten::new())
        .push(appmult_retrain::ApproxLinear::new(
            64,
            16,
            11,
            lut.clone(),
            grads.clone(),
            appmult_retrain::QuantConfig::default(),
        ))
        .push(appmult_nn::layers::Relu::new())
        .push(appmult_retrain::ApproxLinear::new(
            16,
            3,
            13,
            lut,
            grads,
            appmult_retrain::QuantConfig::default(),
        ));
    let mut opt = Adam::new(5e-3);
    let cfg = RetrainConfig {
        epochs: 6,
        // Epoch 4 runs at an absurd learning rate to provoke a divergence.
        schedule: StepSchedule::new(vec![(1, 5e-3), (4, 5.0), (5, 5e-3)]),
        eval_every: 1,
        resilience: Some(ResiliencePolicy {
            max_grad_norm: Some(10.0),
            divergence_factor: 1.05,
            divergence_patience: 1,
            lr_backoff: 0.5,
            max_rollbacks: 3,
        }),
        obs: obs.clone(),
    };
    let history = retrain(&mut model, &mut opt, &cfg, &train, &test);
    appmult_obs::set_global(&ObsSink::null());

    ObsDemo {
        report_json: obs.to_json_with_config(&run_config()),
        events_jsonl: obs.events_jsonl(),
        summary: obs.summary(),
        history,
    }
}

/// The resolved run configuration embedded in every result file's JSON
/// header: worker threads and the active GEMM kernel, so a report is
/// interpretable without the environment that produced it.
pub fn run_config() -> Vec<(&'static str, appmult_obs::Value)> {
    vec![
        (
            "threads",
            appmult_obs::Value::from(appmult_pool::Pool::global().threads() as u64),
        ),
        (
            "kernel",
            appmult_obs::Value::from(appmult_kernels::Kernel::global().label()),
        ),
    ]
}

/// The Fig. 3 series for one multiplier slice as CSV: the raw AppMult row
/// `AM(W_f, X)`, the AccMult line, the Eq. 4 smoothing, and the
/// difference-based / STE / raw-difference gradients.
///
/// Shared by the `fig3` binary and the golden-file regression tests, so a
/// change to any of the underlying math shows up as a golden diff.
pub fn fig3_csv(lut: &MultiplierLut, wf: u32, hws: u32) -> String {
    let row = lut.row(wf).to_vec();
    let smoothed = appmult_retrain::smooth_row(&row, hws);
    let ours = GradientLut::build(lut, GradientMode::difference_based(hws));
    let ste = GradientLut::build(lut, GradientMode::Ste);
    let raw = GradientLut::build(lut, GradientMode::RawDifference);

    let mut csv = String::from("x,appmult,accmult,smoothed,grad_diff,grad_ste,grad_raw\n");
    for x in 0..row.len() as u32 {
        let sm = smoothed[x as usize]
            .map(|v| format!("{v:.4}"))
            .unwrap_or_default();
        csv.push_str(&format!(
            "{x},{},{},{sm},{:.4},{:.4},{:.4}\n",
            row[x as usize],
            wf * x,
            ours.wrt_x(wf, x),
            ste.wrt_x(wf, x),
            raw.wrt_x(wf, x),
        ));
    }
    csv
}

/// One Table I row: measured error metrics and hardware cost of a zoo
/// entry next to the paper's published values.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Table I multiplier name.
    pub name: String,
    /// Reproduction-fidelity label (`exact` / `surrogate` / `synthesized`).
    pub fidelity: &'static str,
    /// Hardware cost: gate-level model estimate when a netlist exists,
    /// otherwise the paper's published numbers.
    pub cost: appmult_circuit::HardwareCost,
    /// Where [`Table1Row::cost`] came from: `"model"` or `"paper*"`.
    pub cost_source: &'static str,
    /// Exhaustively measured error metrics of the entry's LUT.
    pub metrics: appmult_mult::ErrorMetrics,
    /// HWS column (`None` for exact multipliers).
    pub hws: Option<u32>,
    /// The paper's published row.
    pub paper: appmult_mult::zoo::PaperRow,
}

/// CSV header matching [`Table1Row::csv_line`].
pub const TABLE1_CSV_HEADER: &str =
    "name,fidelity,area_um2,delay_ps,power_uw,er_pct,nmed_pct,max_ed,hws,\
     paper_area,paper_delay,paper_power,paper_er,paper_nmed,paper_maxed\n";

/// Computes one Table I row from a zoo entry.
///
/// Shared by the `table1` binary and the golden-file regression tests.
pub fn table1_row(entry: &ZooEntry, model: &appmult_circuit::CostModel) -> Table1Row {
    let lut = entry.multiplier.to_lut();
    let metrics = appmult_mult::ErrorMetrics::exhaustive(&lut);
    let (cost, cost_source) = match entry.multiplier.circuit() {
        Some(c) => (model.estimate(&c), "model"),
        None => (
            appmult_circuit::HardwareCost {
                area_um2: entry.paper.area_um2,
                delay_ps: entry.paper.delay_ps,
                power_uw: entry.paper.power_uw,
            },
            "paper*",
        ),
    };
    let fidelity = match entry.fidelity {
        appmult_mult::zoo::Fidelity::ExactSemantics => "exact",
        appmult_mult::zoo::Fidelity::Surrogate => "surrogate",
        appmult_mult::zoo::Fidelity::Synthesized => "synthesized",
    };
    Table1Row {
        name: entry.name.to_string(),
        fidelity,
        cost,
        cost_source,
        metrics,
        hws: entry.paper.hws,
        paper: entry.paper,
    }
}

impl Table1Row {
    /// The HWS column as printed (`N/A` for exact multipliers).
    pub fn hws_label(&self) -> String {
        self.hws
            .map(|h| h.to_string())
            .unwrap_or_else(|| "N/A".into())
    }

    /// One CSV line in the [`TABLE1_CSV_HEADER`] column order.
    pub fn csv_line(&self) -> String {
        format!(
            "{},{},{:.2},{:.2},{:.3},{:.2},{:.4},{},{},{:.2},{:.2},{:.3},{:.2},{:.4},{}\n",
            self.name,
            self.fidelity,
            self.cost.area_um2,
            self.cost.delay_ps,
            self.cost.power_uw,
            self.metrics.er_pct(),
            self.metrics.nmed_pct(),
            self.metrics.max_ed,
            self.hws_label(),
            self.paper.area_um2,
            self.paper.delay_ps,
            self.paper.power_uw,
            self.paper.er_pct,
            self.paper.nmed_pct,
            self.paper.max_ed,
        )
    }

    /// The human-facing markdown cells of the `table1` binary.
    pub fn markdown_cells(&self) -> Vec<String> {
        vec![
            self.name.clone(),
            self.fidelity.into(),
            format!("{:.1} ({})", self.cost.area_um2, self.cost_source),
            format!("{:.1}", self.cost.delay_ps),
            format!("{:.2}", self.cost.power_uw),
            format!("{:.1} / {:.1}", self.metrics.er_pct(), self.paper.er_pct),
            format!(
                "{:.2} / {:.2}",
                self.metrics.nmed_pct(),
                self.paper.nmed_pct
            ),
            format!("{} / {}", self.metrics.max_ed, self.paper.max_ed),
            self.hws_label(),
        ]
    }
}

/// Writes `contents` under `results/` (created on demand), returning the path.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_results(file: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(file);
    std::fs::write(&path, contents).expect("write results file");
    path
}

/// Renders a markdown table from a header and rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    s.push_str(&format!("| {} |\n", header.join(" | ")));
    s.push_str(&format!("|{}\n", "---|".repeat(header.len())));
    for row in rows {
        s.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_and_values() {
        let a = Args::from_vec(vec!["--full".into(), "--epochs".into(), "7".into()]);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
        assert_eq!(a.get_or("epochs", 3usize), 7);
        assert_eq!(a.get_or("batch", 32usize), 32);
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    fn cpu_scale_workload_generates() {
        let scale = Scale::cpu_cifar10();
        let w = Workload::generate(&scale);
        assert!(!w.train.is_empty() && !w.test.is_empty());
    }
}
