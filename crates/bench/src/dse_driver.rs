//! Driver for the `dse` binary: closed-loop multiplier design-space
//! exploration seeded from the zoo's gate-level designs.
//!
//! The driver owns everything around the search itself (which lives in
//! `appmult-dse`): seeding from the zoo, profiling-style marginals,
//! writing `results/DSE.json`, re-loading frontier designs as
//! [`DiscoveredMultiplier`]s, and the dominance comparison against the
//! seed zoo that the CI smoke job gates on.

use std::sync::Arc;

use appmult_circuit::{CostModel, Netlist};
use appmult_dse::{default_marginals, dse_json, frontier_json, run, DseConfig, DseResult, RungFn};
use appmult_mult::{zoo, DiscoveredMultiplier, ErrorMetrics, Multiplier, MultiplierLut};
use appmult_pool::Pool;
use appmult_retrain::GradientMode;

use crate::{markdown_table, pretrain_float, retrain_with_multiplier, ModelKind, Scale, Workload};

/// Knobs of one `dse` bench run.
#[derive(Debug, Clone)]
pub struct DseBenchConfig {
    /// Operand width searched (must have gate-level zoo seeds: 6, 7, 8).
    pub bits: u32,
    /// Master search seed.
    pub seed: u64,
    /// Survivors per generation.
    pub mu: usize,
    /// Offspring per generation.
    pub lambda: usize,
    /// Generation count.
    pub generations: usize,
    /// Max mutations per offspring.
    pub max_mutations: usize,
    /// Also seed from the slow `_syn` ALS designs.
    pub include_syn: bool,
    /// Opt-in mini-retrain rung for frontier members (slow; recorded in
    /// the report, never used for selection).
    pub rung: bool,
}

impl DseBenchConfig {
    /// CI-smoke defaults: 6-bit search, μ=8, λ=24, 10 generations —
    /// small enough for a CI job, large enough that the frontier
    /// reliably discovers zoo-dominating designs from the default seed.
    pub fn smoke(seed: u64) -> Self {
        Self {
            bits: 6,
            seed,
            mu: 8,
            lambda: 24,
            generations: 10,
            max_mutations: 2,
            include_syn: false,
            rung: false,
        }
    }
}

/// A seed zoo design scored on the same basis as the search candidates.
#[derive(Debug, Clone)]
pub struct ZooBaseline {
    /// Zoo design name.
    pub name: String,
    /// Critical-path delay from the shared cost model, ps.
    pub delay_ps: f64,
    /// NMED under the search's profiled marginals.
    pub nmed: f64,
}

/// Which zoo baselines one frontier design strictly dominates on
/// (delay, NMED).
#[derive(Debug, Clone)]
pub struct DominanceRecord {
    /// Frontier design name.
    pub design: String,
    /// Names of the dominated zoo baselines.
    pub dominates: Vec<String>,
}

/// Everything a caller (binary, CI job, schema test) needs from one run.
#[derive(Debug)]
pub struct DseBenchOutcome {
    /// Full `results/DSE.json` contents.
    pub json: String,
    /// Frontier-only document (byte-identical across thread counts).
    pub frontier_json: String,
    /// The raw search result.
    pub result: DseResult,
    /// Frontier designs re-loaded from their own netlist exports.
    pub discovered: Vec<DiscoveredMultiplier>,
    /// Seed zoo designs on the shared scoring basis.
    pub baselines: Vec<ZooBaseline>,
    /// Per-frontier-design dominance vs the baselines.
    pub dominance: Vec<DominanceRecord>,
    /// Human-readable frontier summary (markdown).
    pub summary: String,
}

impl DseBenchOutcome {
    /// Number of frontier designs that dominate at least one zoo baseline.
    pub fn dominating_designs(&self) -> usize {
        self.dominance
            .iter()
            .filter(|d| !d.dominates.is_empty())
            .count()
    }
}

/// Gate-level zoo netlists of the requested width, in zoo order — the
/// deterministic seed population of the search.
pub fn seed_netlists(bits: u32, include_syn: bool) -> Vec<(String, Netlist)> {
    // Filter by *name* before lookup: `zoo::entry` runs (cached) logic
    // synthesis for `_syn` designs, which dwarfs the search itself in
    // debug builds when they are not even wanted as seeds.
    zoo::names()
        .iter()
        .filter(|n| include_syn || !n.contains("_syn"))
        .filter_map(|n| zoo::entry(n))
        .filter(|e| e.multiplier.bits() == bits)
        .filter_map(|e| {
            e.multiplier
                .circuit()
                .map(|c| (e.name.to_string(), c.netlist().clone()))
        })
        .collect()
}

/// Scores the seed zoo on the search's own basis: delay from the shared
/// cost model, NMED under the profiled marginals.
pub fn zoo_baselines(seeds: &[(String, Netlist)], bits: u32) -> Vec<ZooBaseline> {
    let model = CostModel::asap7();
    let (w_probs, x_probs) = default_marginals(bits);
    seeds
        .iter()
        .map(|(name, netlist)| {
            let analysis = appmult_verify::analyze_netlist(netlist, &model);
            let circuit = appmult_circuit::MultiplierCircuit::from_netlist(netlist.clone(), bits)
                .expect("zoo seeds are well-formed multipliers");
            let products: Vec<u32> = circuit
                .exhaustive_products()
                .into_iter()
                .map(|p| p as u32)
                .collect();
            let lut = MultiplierLut::from_entries(name.clone(), bits, products);
            let metrics = ErrorMetrics::with_marginals(&lut, &w_probs, &x_probs);
            ZooBaseline {
                name: name.clone(),
                delay_ps: analysis.cost.delay_ps,
                nmed: metrics.nmed,
            }
        })
        .collect()
}

/// Strict (delay, NMED) dominance: no worse on both, better on at least
/// one.
fn dominates_delay_nmed(delay: f64, nmed: f64, base: &ZooBaseline) -> bool {
    delay <= base.delay_ps && nmed <= base.nmed && (delay < base.delay_ps || nmed < base.nmed)
}

/// A mini-retrain rung: one short LeNet retraining per frontier LUT on a
/// tiny shared workload, returning final top-1 accuracy in percent.
pub fn mini_retrain_rung() -> Box<RungFn> {
    let mut scale = Scale::cpu_cifar10();
    scale.pretrain_epochs = 2;
    scale.retrain_epochs = 2;
    let workload = Workload::generate(&scale);
    let (model, _) = pretrain_float(ModelKind::LeNet, &scale, &workload);
    let state = std::sync::Mutex::new(model);
    Box::new(move |lut: &MultiplierLut| {
        let candidates = appmult_retrain::candidates_for_bits(lut.bits());
        let hws = candidates.get(candidates.len() / 2).copied().unwrap_or(1);
        // The retrain only copies parameters *out* of the pretrained
        // model, so the same instance serves every frontier member.
        let mut pretrained = state.lock().expect("rung state poisoned");
        let outcome = retrain_with_multiplier(
            ModelKind::LeNet,
            &scale,
            &workload,
            &mut pretrained,
            &Arc::new(lut.clone()),
            GradientMode::difference_based(hws),
        );
        outcome.final_pct()
    })
}

/// Runs the full bench: seed, search, score, serialize.
///
/// # Panics
///
/// Panics if the zoo has no gate-level seed of the requested width.
pub fn run_dse_bench(cfg: &DseBenchConfig) -> DseBenchOutcome {
    let seeds = seed_netlists(cfg.bits, cfg.include_syn);
    assert!(
        !seeds.is_empty(),
        "no gate-level zoo seeds of width {}",
        cfg.bits
    );
    let (w_probs, x_probs) = default_marginals(cfg.bits);
    let reference =
        CostModel::asap7().estimate(&appmult_circuit::MultiplierCircuit::array(cfg.bits));
    let search_cfg = DseConfig {
        bits: cfg.bits,
        seed: cfg.seed,
        mu: cfg.mu,
        lambda: cfg.lambda,
        generations: cfg.generations,
        max_mutations: cfg.max_mutations,
        w_probs,
        x_probs,
        reference,
        rung: cfg.rung.then(mini_retrain_rung),
    };
    let seed_netlists: Vec<Netlist> = seeds.iter().map(|(_, n)| n.clone()).collect();
    let result = run(&search_cfg, &seed_netlists, &Pool::global());

    let baselines = zoo_baselines(&seeds, cfg.bits);
    let mut dominance = Vec::with_capacity(result.frontier.len());
    let mut discovered = Vec::with_capacity(result.frontier.len());
    for candidate in &result.frontier {
        let name = candidate.design_name(cfg.bits);
        let text = appmult_circuit::to_netlist_text(&candidate.netlist);
        let loaded = DiscoveredMultiplier::from_netlist_text(&name, cfg.bits, &text)
            .expect("frontier designs passed the oracle and must load");
        discovered.push(loaded);
        let delay = candidate.eval.cost.delay_ps;
        let nmed = candidate.eval.metrics.nmed;
        dominance.push(DominanceRecord {
            design: name,
            dominates: baselines
                .iter()
                .filter(|b| dominates_delay_nmed(delay, nmed, b))
                .map(|b| b.name.clone())
                .collect(),
        });
    }

    let threads = Pool::global().threads();
    let kernel = appmult_kernels::Kernel::global().label();
    let json = dse_json(&search_cfg, &result, threads, &kernel);
    let frontier_doc = frontier_json(&search_cfg, &result);

    let rows: Vec<Vec<String>> = result
        .frontier
        .iter()
        .zip(&dominance)
        .map(|(c, d)| {
            vec![
                c.design_name(cfg.bits),
                format!("{:.1}", c.eval.cost.delay_ps),
                format!("{:.2}", c.eval.cost.area_um2),
                format!("{:.2}", c.eval.cost.power_uw),
                format!("{:.4}", c.eval.metrics.nmed * 100.0),
                c.eval.metrics.max_ed.to_string(),
                c.eval.hws.to_string(),
                format!("{:.5}", c.eval.proxy_loss),
                if d.dominates.is_empty() {
                    "-".to_string()
                } else {
                    d.dominates.join(" ")
                },
            ]
        })
        .collect();
    let summary = markdown_table(
        &[
            "design",
            "delay_ps",
            "area_um2",
            "power_uw",
            "nmed_pct",
            "max_ed",
            "hws",
            "proxy",
            "dominates",
        ],
        &rows,
    );

    DseBenchOutcome {
        json,
        frontier_json: frontier_doc,
        result,
        discovered,
        baselines,
        dominance,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_seeds_exist_for_smoke_width() {
        let seeds = seed_netlists(6, false);
        assert!(seeds.len() >= 2, "expected exact + truncated 6-bit seeds");
        assert!(seeds.iter().any(|(n, _)| n == "mul6u_acc"));
        assert!(seeds.iter().any(|(n, _)| n == "mul6u_rm4"));
        let baselines = zoo_baselines(&seeds, 6);
        let acc = baselines.iter().find(|b| b.name == "mul6u_acc").unwrap();
        let rm4 = baselines.iter().find(|b| b.name == "mul6u_rm4").unwrap();
        assert_eq!(acc.nmed, 0.0);
        assert!(rm4.nmed > 0.0);
        assert!(rm4.delay_ps < acc.delay_ps);
    }
}
