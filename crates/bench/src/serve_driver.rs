//! Open-loop load driver for the `appmult-serve` engine — the logic
//! behind the `serve_bench` binary, exposed as a library so the schema
//! tests can run a miniature bench and lock the `BENCH_serve.json`
//! shape.
//!
//! Estimates the engine's service capacity, then drives four open-loop
//! phases against it: `steady` (~0.5x capacity), `overload` (>= 2x
//! capacity, mixed priorities, short deadlines on part of the traffic, a
//! mid-phase model eviction + reload, and chaos-injected worker panics),
//! `recovery` (back to ~0.5x), and `multimodel` — a saturated hot/cold
//! two-model phase (hot demand >= 2x capacity, cold ~1x, both High
//! priority so the ladder sheds neither) that measures per-model
//! throughput share and p50/p99 latency under DRR scheduling.
//!
//! Every submission is accounted for: it either resolves to a served
//! output or to exactly one typed rejection, and the driver asserts the
//! books balance (zero lost requests) unconditionally. With
//! `assert_overload` it additionally requires a nonzero shed count under
//! overload and at least one recovered worker panic; with
//! `assert_fairness` it requires every model's throughput share in the
//! multimodel phase to stay at or above **half its fair share** and every
//! phase's ok-p99 to fit its SLO budget.

use std::collections::BTreeMap;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use appmult_mult::{FaultyMultiplier, Multiplier};
use appmult_nn::layers::{Relu, Sequential};
use appmult_nn::Tensor;
use appmult_retrain::{ApproxLinear, GradientLut, GradientMode, QuantConfig};
use appmult_rng::Rng64;
use appmult_serve::{
    Engine, EngineConfig, LutBuilder, LutHandle, ModelSpec, Priority, Registry, Request, Ticket,
};

use crate::{markdown_table, write_results, Args};

const IN_DIM: usize = 32;
const HIDDEN: usize = 8;

/// Phase indices, in driving order.
const PHASES: [&str; 5] = ["estimate", "steady", "overload", "recovery", "multimodel"];
const MULTIMODEL: usize = 4;

/// Every model's throughput share must stay at or above half its fair
/// share (fair share = 1/models) in the multimodel phase.
const FAIRNESS_FACTOR: f64 = 0.5;

/// Knobs of one bench run (CLI flags of the `serve_bench` binary).
#[derive(Debug, Clone)]
pub struct ServeBenchOptions {
    /// Per-phase driving time.
    pub duration: Duration,
    /// Overload multiple of estimated capacity.
    pub overload_x: f64,
    /// Panic every Nth batch (0 disables).
    pub chaos: u64,
    /// Enable the overload CI assertions.
    pub assert_overload: bool,
    /// Enable the fairness + per-phase p99 SLO assertions.
    pub assert_fairness: bool,
}

impl ServeBenchOptions {
    /// Parses `--duration-ms`, `--overload-x`, `--chaos`,
    /// `--assert-overload`, `--assert-fairness`.
    pub fn from_args(args: &Args) -> Self {
        Self {
            duration: Duration::from_millis(args.get_or("duration-ms", 250u64)),
            overload_x: args.get_or("overload-x", 2.5f64),
            chaos: args.get_or("chaos", 7u64),
            assert_overload: args.flag("assert-overload"),
            assert_fairness: args.flag("assert-fairness"),
        }
    }

    /// The per-phase ok-p99 SLO budget: generous (an order of magnitude
    /// over the drive window plus slack) because the books, not raw
    /// speed, are what CI gates — a starved model blows through even
    /// this.
    pub fn p99_budget_ms(&self) -> f64 {
        self.duration.as_millis() as f64 * 10.0 + 2000.0
    }
}

/// Per-model accounting of the multimodel phase.
#[derive(Debug, Clone)]
pub struct ModelShare {
    /// Registry name.
    pub model: &'static str,
    /// Requests submitted for this model in the phase.
    pub submitted: usize,
    /// Requests served for this model in the phase.
    pub served: usize,
    /// Fraction of all served requests in the phase.
    pub share: f64,
    /// Client-observed p50 latency of served requests, milliseconds.
    pub ok_p50_ms: f64,
    /// Client-observed p99 latency of served requests, milliseconds.
    pub ok_p99_ms: f64,
}

/// What one bench run produced (everything the binary prints/asserts).
#[derive(Debug)]
pub struct ServeBenchReport {
    /// The full `BENCH_serve.json` contents.
    pub json: String,
    /// Estimated service capacity, requests/second.
    pub capacity_rps: f64,
    /// Total requests submitted across all phases.
    pub submitted: usize,
    /// Requests that resolved `Ok`.
    pub served: usize,
    /// Submissions that never resolved (must be 0).
    pub lost: usize,
    /// Shed + queue-full rejections.
    pub shed: usize,
    /// Worker panics recovered.
    pub panics: u64,
    /// `Ok` count in the recovery phase.
    pub recovery_ok: usize,
    /// Multimodel-phase share accounting, one entry per model.
    pub shares: Vec<ModelShare>,
    /// Smallest per-model throughput share in the multimodel phase.
    pub min_share: f64,
    /// The share every model must meet (`FAIRNESS_FACTOR / models`).
    pub share_bound: f64,
    /// Per-phase ok-p99 in ms (`NaN`→0 when a phase served nothing).
    pub phase_p99_ms: Vec<f64>,
    /// The common p99 budget those are judged against.
    pub p99_budget_ms: f64,
}

/// One resolved request: phase index, model, outcome label (`"ok"` or the
/// rejection label), and client-observed latency in milliseconds.
type Outcome = (usize, &'static str, &'static str, f64);

/// Mutable driver state threaded through the capacity estimate and the
/// open-loop phases.
struct Driver {
    seq: usize,
    submitted: [usize; 5],
    submitted_by_model: [BTreeMap<&'static str, usize>; 5],
    admission_rejects: Vec<(usize, &'static str, &'static str)>,
    inputs: Vec<Tensor>,
}

impl Driver {
    /// Builds the next request in the deterministic mixed-traffic pattern:
    /// 1 in 5 targets the fault-injected model, priorities cycle through
    /// all three lanes, every 4th carries a 20 ms deadline, and every 16th
    /// input holds a NaN to exercise scrubbing.
    fn next_request(&mut self, phase: usize) -> (&'static str, Request) {
        let seq = self.seq;
        let model = if seq.is_multiple_of(5) {
            "faulty"
        } else {
            "clean"
        };
        let mut req = self.request_for(phase, model);
        req.priority = match seq % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        if seq.is_multiple_of(4) {
            req = req.with_deadline(Duration::from_millis(20));
        }
        (model, req)
    }

    /// A plain request for one model (the multimodel phase drives these at
    /// High priority with no deadline, so neither shedding nor deadline
    /// drops distort the share measurement).
    fn request_for(&mut self, phase: usize, model: &'static str) -> Request {
        let seq = self.seq;
        self.seq += 1;
        self.submitted[phase] += 1;
        *self.submitted_by_model[phase].entry(model).or_insert(0) += 1;
        Request::new(model, self.inputs[seq % self.inputs.len()].clone())
    }
}

/// Both models share one LUT cache; the faulty one runs on a
/// bit-flip-corrupted copy of the same multiplier. The LUT pair is listed
/// as a prefetch so `Registry::load` builds it before the factory (and
/// any rebuild) fetches it warm.
fn spec(name: &str, faulty: bool) -> ModelSpec {
    let key = if faulty {
        "mul7u_rm6+faults"
    } else {
        "mul7u_rm6"
    };
    let build: LutBuilder = Arc::new(move || {
        let clean = appmult_mult::zoo::mul7u_rm6().to_lut();
        let lut = if faulty {
            FaultyMultiplier::corrupt_lut(&clean, 48, 0xFA117).into_lut()
        } else {
            clean
        };
        let grads = GradientLut::build(&lut, GradientMode::difference_based(8));
        (lut, grads)
    });
    let fetch = Arc::clone(&build);
    ModelSpec::new(
        name,
        vec![IN_DIM],
        Arc::new(move |luts: &LutHandle<'_>| {
            let (lut, grads) = luts.get(key, || fetch());
            Sequential::new()
                .push(ApproxLinear::new(
                    IN_DIM,
                    HIDDEN,
                    11,
                    lut,
                    grads,
                    QuantConfig::default(),
                ))
                .push(Relu::new())
        }),
    )
    .with_prefetch(key, build)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn sorted_ok_ms<F: Fn(&Outcome) -> bool>(outcomes: &[Outcome], keep: F) -> Vec<f64> {
    let mut ms: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.2 == "ok" && keep(o))
        .map(|&(_, _, _, ms)| ms)
        .collect();
    ms.sort_by(f64::total_cmp);
    ms
}

/// Runs the full bench (see the module docs) and writes
/// `results/BENCH_serve.json`.
///
/// # Panics
///
/// Panics when the books do not balance (a lost request), or when an
/// enabled assertion tier (`assert_overload` / `assert_fairness`) fails —
/// the CI jobs rely on a nonzero exit.
#[allow(clippy::too_many_lines)]
pub fn run_serve_bench(opts: &ServeBenchOptions) -> ServeBenchReport {
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let obs = appmult_obs::ObsSink::recording();
    appmult_obs::set_global(&obs);

    let registry = Arc::new(Registry::new(4));
    registry.load(spec("clean", false)).expect("load clean");
    registry.load(spec("faulty", true)).expect("load faulty");

    let cfg = EngineConfig {
        queue_capacity: 48,
        workers: (host / 2).clamp(2, 4),
        max_batch: 16,
        max_batch_wait: Duration::from_millis(1),
        retry_after: Duration::from_millis(5),
        scrub_nonfinite: true,
        chaos_panic_every: (opts.chaos > 0).then_some(opts.chaos),
        ..EngineConfig::default()
    };
    let cfg_header = cfg.describe();
    let workers = cfg.workers;
    let engine = Engine::start(Arc::clone(&registry), cfg);
    println!(
        "serve_bench: {} pool threads, {workers} serve workers, chaos every {} batches",
        appmult_pool::Pool::global().threads(),
        opts.chaos,
    );

    let mut rng = Rng64::seed_from_u64(0x5E7E);
    let mut driver = Driver {
        seq: 0,
        submitted: [0; 5],
        submitted_by_model: std::array::from_fn(|_| BTreeMap::new()),
        admission_rejects: Vec::new(),
        inputs: (0..32)
            .map(|i: usize| {
                let mut data: Vec<f32> = (0..IN_DIM).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
                if i.is_multiple_of(16) {
                    data[0] = f32::NAN;
                }
                Tensor::from_vec(data, &[IN_DIM])
            })
            .collect(),
    };

    // A collector thread resolves tickets off the submission path so the
    // driver stays open-loop; latency is client-observed submit-to-resolve.
    let (tx, rx) = mpsc::channel::<(usize, &'static str, Ticket, Instant)>();
    let outcomes: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::new()));
    let collector = {
        let outcomes = Arc::clone(&outcomes);
        std::thread::spawn(move || {
            while let Ok((phase, model, ticket, t0)) = rx.recv() {
                let label = match ticket.wait() {
                    Ok(_) => "ok",
                    Err(r) => r.label(),
                };
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                outcomes
                    .lock()
                    .expect("outcomes")
                    .push((phase, model, label, ms));
            }
        })
    };
    let submit = |driver: &mut Driver, phase: usize, model: &'static str, req: Request| {
        let at = Instant::now();
        match engine.submit(req) {
            Ok(ticket) => tx
                .send((phase, model, ticket, at))
                .expect("collector alive"),
            Err(r) => driver.admission_rejects.push((phase, model, r.label())),
        }
    };

    // ---- Phase 0: capacity estimate (saturation burst) ----
    //
    // Submit as fast as admission allows for a fixed window, backing off
    // briefly on rejections so the queue stays pinned at capacity and the
    // workers never idle. The dispatch counter delta over the window is
    // the true service capacity.
    let est_t0 = Instant::now();
    let est_window = opts.duration.min(Duration::from_millis(150));
    let dispatched_before = obs.counter("serve.batch.jobs_dispatched");
    while est_t0.elapsed() < est_window {
        let (model, req) = driver.next_request(0);
        let rejected_before = driver.admission_rejects.len();
        submit(&mut driver, 0, model, req);
        if driver.admission_rejects.len() > rejected_before {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let est_elapsed = est_t0.elapsed().as_secs_f64();
    let dispatched = obs.counter("serve.batch.jobs_dispatched") - dispatched_before;
    let capacity_rps = (dispatched as f64 / est_elapsed).max(200.0);
    println!("estimated capacity: {capacity_rps:.0} req/s (saturation burst)");

    // ---- Phases 1-3: open-loop driving at a target rate ----
    let rates = [
        ("steady", capacity_rps * 0.5),
        ("overload", capacity_rps * opts.overload_x),
        ("recovery", capacity_rps * 0.5),
    ];
    for (pi, (name, rate)) in rates.iter().enumerate() {
        let phase = pi + 1;
        let t0 = Instant::now();
        let mut sent = 0usize;
        let mut evicted = false;
        let mut reloaded = false;
        while t0.elapsed() < opts.duration {
            // Overload chaos: evict the faulty model mid-phase, reload it
            // at the three-quarter mark.
            if *name == "overload" {
                let frac = t0.elapsed().as_secs_f64() / opts.duration.as_secs_f64();
                if !evicted && frac >= 0.5 {
                    registry.unload("faulty");
                    evicted = true;
                } else if !reloaded && frac >= 0.75 {
                    registry.load(spec("faulty", true)).expect("reload");
                    reloaded = true;
                }
            }
            let target = (t0.elapsed().as_secs_f64() * rate) as usize;
            while sent < target {
                let (model, req) = driver.next_request(phase);
                submit(&mut driver, phase, model, req);
                sent += 1;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        println!(
            "phase {name}: submitted {} at {rate:.0} req/s",
            driver.submitted[phase]
        );
    }

    // ---- Phase 4: multimodel hot/cold saturation ----
    //
    // Hot ("clean") demand well above capacity, cold ("faulty") around
    // capacity — both exceed the ~half-capacity service share DRR can give
    // each, so both sub-queues stay backlogged and the *served* share
    // measures the scheduler, not the traffic mix. Each tick's burst
    // interleaves the two models 1:1 while both lag their targets (hot's
    // surplus demand trails) so the freed admission slots are contested by
    // both — a one-sided burst would decide the served mix at the
    // admission gate and measure nothing about scheduling. Both ride the
    // High lane with no deadline: shedding and deadline drops would
    // otherwise distort the share measurement.
    {
        let hot_rate = capacity_rps * opts.overload_x.max(2.0);
        let cold_rate = capacity_rps;
        let t0 = Instant::now();
        let (mut hot_sent, mut cold_sent) = (0usize, 0usize);
        while t0.elapsed() < opts.duration {
            let elapsed = t0.elapsed().as_secs_f64();
            let cold_target = (elapsed * cold_rate) as usize;
            let hot_target = (elapsed * hot_rate) as usize;
            while cold_sent < cold_target || hot_sent < hot_target {
                if cold_sent < cold_target {
                    let req = driver
                        .request_for(MULTIMODEL, "faulty")
                        .with_priority(Priority::High);
                    submit(&mut driver, MULTIMODEL, "faulty", req);
                    cold_sent += 1;
                }
                if hot_sent < hot_target {
                    let req = driver
                        .request_for(MULTIMODEL, "clean")
                        .with_priority(Priority::High);
                    submit(&mut driver, MULTIMODEL, "clean", req);
                    hot_sent += 1;
                }
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        println!(
            "phase multimodel: submitted {} (hot {hot_sent} at {hot_rate:.0} req/s, \
             cold {cold_sent} at {cold_rate:.0} req/s)",
            driver.submitted[MULTIMODEL]
        );
    }

    // Drain: close the collector channel and wait for every ticket.
    drop(tx);
    collector.join().expect("collector");
    engine.shutdown();
    appmult_obs::set_global(&appmult_obs::ObsSink::null());

    // ---- Accounting: every submission resolved exactly once ----
    let outcomes = Arc::try_unwrap(outcomes)
        .map(|m| m.into_inner().expect("outcomes"))
        .unwrap_or_default();
    let labels = [
        "ok",
        "queue_full",
        "shed",
        "deadline",
        "model_unloaded",
        "invalid_input",
        "worker_panic",
        "shutting_down",
    ];
    let mut counts = vec![BTreeMap::<&str, usize>::new(); PHASES.len()];
    let mut served_by_model = vec![BTreeMap::<&str, usize>::new(); PHASES.len()];
    for &(phase, model, label, _) in &outcomes {
        *counts[phase].entry(label).or_insert(0) += 1;
        if label == "ok" {
            *served_by_model[phase].entry(model).or_insert(0) += 1;
        }
    }
    for &(phase, _, label) in &driver.admission_rejects {
        *counts[phase].entry(label).or_insert(0) += 1;
    }
    let total_submitted: usize = driver.submitted.iter().sum();
    let total_resolved: usize = counts.iter().flat_map(BTreeMap::values).sum();
    let lost = total_submitted.saturating_sub(total_resolved);
    let served: usize = counts
        .iter()
        .map(|c| c.get("ok").copied().unwrap_or(0))
        .sum();
    let shed_total: usize = counts
        .iter()
        .flat_map(|c| [c.get("shed"), c.get("queue_full")])
        .flatten()
        .sum();

    let ok_ms = sorted_ok_ms(&outcomes, |_| true);
    let mut rej_ms: Vec<f64> = outcomes
        .iter()
        .filter(|(_, _, l, _)| *l != "ok")
        .map(|&(_, _, _, ms)| ms)
        .collect();
    rej_ms.sort_by(f64::total_cmp);
    let phase_p99_ms: Vec<f64> = (0..PHASES.len())
        .map(|p| percentile(&sorted_ok_ms(&outcomes, |o| o.0 == p), 0.99))
        .collect();
    let p99_budget_ms = opts.p99_budget_ms();

    // ---- Multimodel fairness accounting ----
    let mm_total_served: usize = served_by_model[MULTIMODEL].values().sum();
    let models = ["clean", "faulty"];
    let fair_share = 1.0 / models.len() as f64;
    let share_bound = FAIRNESS_FACTOR * fair_share;
    let shares: Vec<ModelShare> = models
        .iter()
        .map(|&model| {
            let model_ok = sorted_ok_ms(&outcomes, |o| o.0 == MULTIMODEL && o.1 == model);
            let served = served_by_model[MULTIMODEL].get(model).copied().unwrap_or(0);
            ModelShare {
                model,
                submitted: driver.submitted_by_model[MULTIMODEL]
                    .get(model)
                    .copied()
                    .unwrap_or(0),
                served,
                share: if mm_total_served == 0 {
                    0.0
                } else {
                    served as f64 / mm_total_served as f64
                },
                ok_p50_ms: percentile(&model_ok, 0.50),
                ok_p99_ms: percentile(&model_ok, 0.99),
            }
        })
        .collect();
    let min_share = shares.iter().map(|s| s.share).fold(f64::INFINITY, f64::min);

    let table = markdown_table(
        &["phase", "submitted", "ok", "rejected", "ok p99 ms"],
        &PHASES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let ok = counts[i].get("ok").copied().unwrap_or(0);
                vec![
                    (*name).to_string(),
                    driver.submitted[i].to_string(),
                    ok.to_string(),
                    (counts[i].values().sum::<usize>() - ok).to_string(),
                    format!("{:.2}", phase_p99_ms[i]),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\n{table}");
    println!(
        "served {served}/{total_submitted}, shed {shed_total}, lost {lost}; \
         ok p50 {:.2} ms p99 {:.2} ms; reject p50 {:.2} ms p99 {:.2} ms",
        percentile(&ok_ms, 0.50),
        percentile(&ok_ms, 0.99),
        percentile(&rej_ms, 0.50),
        percentile(&rej_ms, 0.99),
    );
    for s in &shares {
        println!(
            "multimodel {}: served {}/{} (share {:.2}, bound {share_bound:.2}), \
             p50 {:.2} ms p99 {:.2} ms",
            s.model, s.served, s.submitted, s.share, s.ok_p50_ms, s.ok_p99_ms
        );
    }
    let panics = obs.counter("serve.worker.panics");
    let rebuilds = obs.counter("serve.model.rebuilds");
    let scrubbed = obs.counter("serve.input.scrubbed");
    let deadline_dropped = obs.counter("serve.deadline.dropped_pre_dispatch");
    let prefetched = obs.counter("serve.lut.prefetch");
    println!(
        "worker panics {panics}, model rebuilds {rebuilds}, inputs scrubbed {scrubbed}, \
         deadline-dropped pre-dispatch {deadline_dropped}, LUTs prefetched {prefetched}"
    );

    // ---- results/BENCH_serve.json with a self-describing config header ----
    let mut config_fields: Vec<(String, String)> = vec![
        (
            "threads".to_string(),
            appmult_pool::Pool::global().threads().to_string(),
        ),
        (
            "kernel".to_string(),
            format!("\"{}\"", appmult_kernels::Kernel::global().label()),
        ),
    ];
    config_fields.extend(
        cfg_header
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone())),
    );
    let config_json: Vec<String> = config_fields
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();
    let phase_json: Vec<String> = PHASES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let by_label: Vec<String> = labels
                .iter()
                .map(|l| format!("\"{l}\": {}", counts[i].get(l).copied().unwrap_or(0)))
                .collect();
            format!(
                "    {{\"phase\": \"{name}\", \"submitted\": {}, {}}}",
                driver.submitted[i],
                by_label.join(", ")
            )
        })
        .collect();
    let phase_latency_json: Vec<String> = PHASES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let ok = sorted_ok_ms(&outcomes, |o| o.0 == i);
            format!(
                "    {{\"phase\": \"{name}\", \"ok_p50\": {:.3}, \"ok_p99\": {:.3}, \
                 \"budget_p99\": {p99_budget_ms:.1}, \"within_budget\": {}}}",
                percentile(&ok, 0.50),
                phase_p99_ms[i],
                phase_p99_ms[i] <= p99_budget_ms,
            )
        })
        .collect();
    let share_json: Vec<String> = shares
        .iter()
        .map(|s| {
            format!(
                "      {{\"model\": \"{}\", \"submitted\": {}, \"served\": {}, \
                 \"share\": {:.4}, \"ok_p50_ms\": {:.3}, \"ok_p99_ms\": {:.3}}}",
                s.model, s.submitted, s.served, s.share, s.ok_p50_ms, s.ok_p99_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"config\": {{\n{}\n  }},\n  \"capacity_rps\": {capacity_rps:.1},\n  \
         \"overload_x\": {},\n  \"duration_ms\": {},\n  \"phases\": [\n{}\n  ],\n  \
         \"phase_latency_ms\": [\n{}\n  ],\n  \
         \"totals\": {{\"submitted\": {total_submitted}, \"served\": {served}, \
         \"shed\": {shed_total}, \"lost\": {lost}}},\n  \
         \"latency_ms\": {{\"ok_p50\": {:.3}, \"ok_p99\": {:.3}, \
         \"reject_p50\": {:.3}, \"reject_p99\": {:.3}}},\n  \
         \"fairness\": {{\"phase\": \"multimodel\", \"fair_share\": {fair_share:.4}, \
         \"bound\": {share_bound:.4}, \"min_share\": {min_share:.4}, \"holds\": {}, \
         \"models\": [\n{}\n    ]}},\n  \
         \"faults\": {{\"worker_panics\": {panics}, \"model_rebuilds\": {rebuilds}, \
         \"inputs_scrubbed\": {scrubbed}, \"deadline_dropped\": {deadline_dropped}, \
         \"luts_prefetched\": {prefetched}}}\n}}\n",
        config_json.join(",\n"),
        opts.overload_x,
        opts.duration.as_millis(),
        phase_json.join(",\n"),
        phase_latency_json.join(",\n"),
        percentile(&ok_ms, 0.50),
        percentile(&ok_ms, 0.99),
        percentile(&rej_ms, 0.50),
        percentile(&rej_ms, 0.99),
        min_share >= share_bound,
        share_json.join(",\n"),
    );
    let path = write_results("BENCH_serve.json", &json);
    println!("wrote {}", path.display());

    // Unconditional: the books must balance. Nothing vanishes under load.
    assert_eq!(
        lost, 0,
        "{total_submitted} submitted but only {total_resolved} resolved"
    );
    assert!(served > 0, "the engine served nothing at all");

    let recovery_ok = counts[3].get("ok").copied().unwrap_or(0);
    if opts.assert_overload {
        assert!(
            shed_total > 0,
            "overload at {}x capacity must shed load (shed+queue_full == 0)",
            opts.overload_x
        );
        if opts.chaos > 0 {
            // Chaos panics fire before dispatch (exactly-once guarantee),
            // so they exercise requeue-or-reject but never poison the
            // model; rebuilds are covered by the registry's unit tests.
            assert!(panics > 0, "chaos was enabled but no worker panic fired");
        }
        assert!(
            recovery_ok > 0,
            "no requests served in the recovery phase after overload + panics"
        );
        println!("overload assertions hold: shed {shed_total}, panics {panics}, recovered");
    }
    if opts.assert_fairness {
        assert!(
            mm_total_served > 0,
            "the multimodel phase served nothing at all"
        );
        assert!(
            min_share >= share_bound,
            "hot-model starvation: min share {min_share:.3} < bound {share_bound:.3} \
             ({shares:?})"
        );
        for (i, name) in PHASES.iter().enumerate() {
            assert!(
                phase_p99_ms[i] <= p99_budget_ms,
                "phase {name} ok-p99 {:.1} ms blew the {p99_budget_ms:.0} ms SLO budget",
                phase_p99_ms[i]
            );
        }
        println!(
            "fairness assertions hold: min share {min_share:.3} >= {share_bound:.3}, \
             all phase p99s within {p99_budget_ms:.0} ms"
        );
    }

    ServeBenchReport {
        json,
        capacity_rps,
        submitted: total_submitted,
        served,
        lost,
        shed: shed_total,
        panics,
        recovery_ok,
        shares,
        min_share,
        share_bound,
        phase_p99_ms,
        p99_budget_ms,
    }
}
