//! Reproduces the **HWS column of Table I** (Sec. V-A): for each AppMult,
//! sweep the half window size over {1, 2, 4, 8, 16, 32, 64}, retrain a
//! small LeNet for a few epochs with the difference-based gradient, and
//! select the HWS with the smallest final training loss.
//!
//! Usage:
//!
//! ```text
//! cargo run -p appmult-bench --release --bin hws_select -- --mult mul7u_rm6
//! cargo run -p appmult-bench --release --bin hws_select            # all (slow)
//! cargo run -p appmult-bench --release --bin hws_select -- --epochs 3
//! ```

use std::sync::Arc;

use appmult_bench::{
    markdown_table, pretrain_float, retrain_with_multiplier, write_results, Args, ModelKind, Scale,
    Workload,
};
use appmult_mult::{zoo, Multiplier};
use appmult_retrain::{candidates_for_bits, select_hws, GradientMode};

fn main() {
    let args = Args::from_env();
    let mut scale = Scale::cpu_cifar10();
    scale.retrain_epochs = args.get_or("epochs", 3);
    let kind = ModelKind::LeNet;

    let names: Vec<&str> = match args.value("mult") {
        Some(m) => {
            let owned = zoo::names()
                .iter()
                .copied()
                .find(|n| *n == m)
                .unwrap_or_else(|| {
                    eprintln!("unknown multiplier {m}");
                    std::process::exit(2);
                });
            vec![owned]
        }
        None => zoo::names()
            .iter()
            .copied()
            .filter(|n| !n.ends_with("_acc"))
            .collect(),
    };

    eprintln!("[hws] generating workload + pretraining float LeNet...");
    let workload = Workload::generate(&scale);
    let (mut pretrained, float_top1) = pretrain_float(kind, &scale, &workload);
    eprintln!("[hws] float accuracy {:.2}%", float_top1 * 100.0);

    let mut rows = vec![];
    let mut csv = String::from("multiplier,hws,train_loss,selected,paper_hws\n");
    for name in names {
        let entry = zoo::entry(name).expect("known");
        let lut = Arc::new(entry.multiplier.to_lut());
        let candidates = candidates_for_bits(lut.bits());
        // `retrain_with_multiplier` copies the pretrained weights out and
        // never mutates them, so every candidate starts from identical
        // initial conditions.
        let selection = select_hws(&candidates, |hws| {
            let outcome = retrain_with_multiplier(
                kind,
                &scale,
                &workload,
                &mut pretrained,
                &lut,
                GradientMode::difference_based(hws),
            );
            let loss = outcome.history.final_train_loss();
            eprintln!("[hws] {name} hws={hws}: train loss {loss:.4}");
            loss
        });
        let selection = match selection {
            Ok(sel) => sel,
            Err(e) => {
                eprintln!("[hws] {name}: sweep failed ({e}); skipping");
                continue;
            }
        };
        for t in &selection.trials {
            csv.push_str(&format!(
                "{name},{},{:.5},{},{}\n",
                t.hws,
                t.train_loss,
                selection.best,
                entry.paper.hws.unwrap_or(0)
            ));
        }
        let trials = selection
            .trials
            .iter()
            .map(|t| format!("{}:{:.3}", t.hws, t.train_loss))
            .collect::<Vec<_>>()
            .join(" ");
        rows.push(vec![
            name.to_string(),
            selection.best.to_string(),
            entry
                .paper
                .hws
                .map(|h| h.to_string())
                .unwrap_or_else(|| "N/A".into()),
            trials,
        ]);
    }

    println!("\n## HWS selection (Sec. V-A sweep)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "Multiplier",
                "Selected HWS",
                "Paper HWS",
                "loss per candidate"
            ],
            &rows
        )
    );
    let path = write_results("hws_select.csv", &csv);
    eprintln!("[hws] wrote {}", path.display());
}
