//! Reproduces **Fig. 5**: ResNet accuracy after retraining vs normalized
//! multiplier power, for 7-bit (a) and 8-bit (b) AppMults, with the
//! AccMult reference lines.
//!
//! Usage:
//!
//! ```text
//! cargo run -p appmult-bench --release --bin fig5
//! ```
//!
//! Reuses `results/table2_resnet.csv` when present (run `table2 --model
//! resnet` first); otherwise runs the ResNet comparison itself. Emits
//! `results/fig5.csv` with one `(power, accuracy)` point per
//! (multiplier, method) and prints an ASCII rendition of both panels.

use appmult_bench::{
    compare_entry, pretrain_float, write_results, Args, ComparisonRow, ModelKind, Scale, Workload,
};
use appmult_models::ResNetDepth;
use appmult_mult::zoo;

/// Accuracy reference points: (multiplier name, top-1 %).
type ReferencePoints = Vec<(String, f64)>;

fn load_cached() -> Option<(Vec<ComparisonRow>, ReferencePoints)> {
    let text = std::fs::read_to_string("results/table2_resnet.csv").ok()?;
    let mut rows = vec![];
    let mut refs = vec![];
    for line in text.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() < 8 {
            continue;
        }
        if f[0].ends_with("_acc") {
            refs.push((f[0].to_string(), f[2].parse().ok()?));
            continue;
        }
        rows.push(ComparisonRow {
            name: f[0].to_string(),
            initial_pct: f[1].parse().unwrap_or(0.0),
            ste_pct: f[2].parse().ok()?,
            ours_pct: f[3].parse().ok()?,
            norm_power: f[4].parse().ok()?,
            norm_delay: f[5].parse().ok()?,
            nmed_pct: f[6].parse().unwrap_or(0.0),
        });
    }
    (!rows.is_empty()).then_some((rows, refs))
}

fn compute() -> (Vec<ComparisonRow>, Vec<(String, f64)>) {
    let scale = Scale::cpu_cifar10();
    let kind = ModelKind::ResNet(ResNetDepth::R10);
    eprintln!("[fig5] no cached table2_resnet.csv; running the ResNet comparison...");
    let workload = Workload::generate(&scale);
    let (mut pretrained, _) = pretrain_float(kind, &scale, &workload);
    let mut rows = vec![];
    let mut refs = vec![];
    for name in zoo::names() {
        if name.starts_with("mul6") {
            continue;
        }
        let entry = zoo::entry(name).expect("known");
        let row = compare_entry(
            kind,
            &scale,
            &workload,
            &mut pretrained,
            &entry,
            entry.recommended_hws(),
        );
        eprintln!(
            "[fig5] {name}: STE {:.2}% ours {:.2}%",
            row.ste_pct, row.ours_pct
        );
        if name.ends_with("_acc") {
            refs.push((name.to_string(), row.ste_pct));
        } else {
            rows.push(row);
        }
    }
    (rows, refs)
}

fn panel(rows: &[ComparisonRow], refs: &[(String, f64)], bits: u32) -> String {
    let prefix = format!("mul{bits}");
    let mut s = format!("### Fig. 5 panel — {bits}-bit AppMults\n");
    if let Some((name, acc)) = refs.iter().find(|(n, _)| n.starts_with(&prefix)) {
        s.push_str(&format!("reference ({name}): {acc:.2}%\n"));
    }
    let mut pts: Vec<&ComparisonRow> = rows
        .iter()
        .filter(|r| r.name.starts_with(&prefix))
        .collect();
    pts.sort_by(|a, b| a.norm_power.total_cmp(&b.norm_power));
    for r in pts {
        s.push_str(&format!(
            "power {:.2} | STE {:6.2}% | ours {:6.2}%   {}\n",
            r.norm_power, r.ste_pct, r.ours_pct, r.name
        ));
    }
    s
}

fn main() {
    let _args = Args::from_env();
    let (rows, refs) = load_cached().unwrap_or_else(compute);

    let mut csv = String::from("name,bits,norm_power,method,accuracy_pct\n");
    for r in &rows {
        let bits = if r.name.starts_with("mul8") { 8 } else { 7 };
        csv.push_str(&format!(
            "{},{},{:.4},ste,{:.4}\n{},{},{:.4},ours,{:.4}\n",
            r.name, bits, r.norm_power, r.ste_pct, r.name, bits, r.norm_power, r.ours_pct
        ));
    }
    let path = write_results("fig5.csv", &csv);

    println!("## Fig. 5 — accuracy vs normalized power (ResNet)\n");
    println!("{}", panel(&rows, &refs, 7));
    println!("{}", panel(&rows, &refs, 8));

    // The paper's headline claims for this figure.
    for bits in [7u32, 8] {
        let pts: Vec<_> = rows
            .iter()
            .filter(|r| r.name.starts_with(&format!("mul{bits}")))
            .collect();
        if pts.is_empty() {
            continue;
        }
        let wins = pts.iter().filter(|r| r.ours_pct >= r.ste_pct).count();
        let ste_spread = pts.iter().map(|r| r.ste_pct).fold(f64::INFINITY, f64::min);
        let ours_spread = pts.iter().map(|r| r.ours_pct).fold(f64::INFINITY, f64::min);
        println!(
            "{bits}-bit: ours >= STE on {wins}/{} points; worst-case accuracy STE {ste_spread:.2}% vs ours {ours_spread:.2}%",
            pts.len()
        );
    }
    println!("\nSeries written to {}", path.display());
}
