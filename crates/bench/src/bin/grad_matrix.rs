//! `grad_matrix`: the gradient-estimator matrix sweep.
//!
//! Retrains one shared pretrained LeNet under every
//! (estimator × multiplier × unsigned/signed) cell of the
//! journal-extension estimator family, prints the accuracy matrix,
//! writes `results/GRAD_MATRIX.json` (`appmult-gradmatrix/v1`), and
//! exits:
//!
//! - `0` on success,
//! - `2` when `--assert-beats-ste` is given and no difference-family
//!   estimator retrains to higher accuracy than STE on any design.
//!
//! ```text
//! cargo run --release -p appmult-bench --bin grad_matrix -- \
//!     [--seed 1] [--hws 4] [--lsq-window 3] \
//!     [--pretrain-epochs 3] [--retrain-epochs 3] \
//!     [--grid-out PATH] [--assert-beats-ste]
//! ```
//!
//! `--grid-out` additionally writes the machine-independent grid
//! document that must be byte-identical across thread counts for a
//! fixed seed — the artifact the CI determinism check compares.

use std::process::ExitCode;

use appmult_bench::grad_matrix_driver::{run_grad_matrix, GradMatrixConfig};
use appmult_bench::{write_results, Args};

fn main() -> ExitCode {
    let args = Args::from_env();
    let mut cfg = GradMatrixConfig::smoke(args.get_or("seed", 1u64));
    cfg.hws = args.get_or("hws", cfg.hws);
    cfg.lsq_window = args.get_or("lsq-window", cfg.lsq_window);
    cfg.pretrain_epochs = args.get_or("pretrain-epochs", cfg.pretrain_epochs);
    cfg.retrain_epochs = args.get_or("retrain-epochs", cfg.retrain_epochs);

    let outcome = run_grad_matrix(&cfg);

    println!(
        "# Gradient-estimator matrix: seed {}, hws {}, lsq window {}, {}+{} epochs\n",
        cfg.seed, cfg.hws, cfg.lsq_window, cfg.pretrain_epochs, cfg.retrain_epochs
    );
    println!("float top-1: {:.2}%\n", outcome.float_top1_pct);
    println!("{}", outcome.summary);

    let path = write_results("GRAD_MATRIX.json", &outcome.json);
    println!("wrote {}", path.display());
    if let Some(out) = args.value("grid-out") {
        std::fs::write(out, &outcome.grid_json).expect("write grid file");
        println!("wrote {out}");
    }

    if args.flag("assert-beats-ste") && !outcome.difference_beats_ste() {
        eprintln!("error: no difference-family estimator beat STE on any design");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
