//! Faulty-hardware retraining sweep.
//!
//! Injects an increasing number of random gate-level defects (stuck-at-0/1,
//! output-invert) into a gate-level multiplier, extracts the defective
//! product table, and retrains a LeNet against it with both gradient rules
//! (STE baseline vs the paper's difference-based rule). The retraining loop
//! runs with the resilience policy enabled — NaN scrubbing, norm clipping,
//! and divergence rollback — since heavily faulted products routinely blow
//! up the loss.
//!
//! Usage:
//!
//! ```text
//! cargo run -p appmult-bench --release --bin fault_sweep
//! cargo run -p appmult-bench --release --bin fault_sweep -- --bits 6 --epochs 4
//! cargo run -p appmult-bench --release --bin fault_sweep -- --wallace --seed 7
//! cargo run -p appmult-bench --release --bin fault_sweep -- --faults 0,1,2,4,8,16
//! ```

use std::sync::Arc;

use appmult_bench::{
    markdown_table, pretrain_float, retrain_with_multiplier_resilient, write_results, Args,
    ModelKind, Scale, Workload,
};
use appmult_circuit::{fault_sites, FaultKind, FaultSpec, MultiplierCircuit};
use appmult_mult::{ErrorMetrics, FaultyMultiplier};
use appmult_retrain::{GradientMode, ResiliencePolicy};
use appmult_rng::Rng64;

/// Draws `count` random faults (site and kind) for a circuit.
fn draw_faults(circuit: &MultiplierCircuit, count: usize, seed: u64) -> Vec<FaultSpec> {
    let sites = fault_sites(circuit.netlist());
    let mut rng = Rng64::seed_from_u64(seed);
    let picked = rng.sample_indices(sites.len(), count.min(sites.len()));
    picked
        .into_iter()
        .map(|i| FaultSpec {
            site: sites[i],
            kind: FaultKind::ALL[rng.index(3)],
        })
        .collect()
}

fn main() {
    let args = Args::from_env();
    let bits: u32 = args.get_or("bits", 8);
    let seed: u64 = args.get_or("seed", 1);
    let hws: u32 = args.get_or("hws", 16);
    let faults_arg = args.value("faults").unwrap_or("0,1,2,4,8");
    let fault_counts: Vec<usize> = faults_arg
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    if fault_counts.is_empty() {
        eprintln!(
            "error: --faults {faults_arg:?} contains no fault counts (expected e.g. 0,1,2,4,8)"
        );
        std::process::exit(2);
    }

    let mut scale = Scale::cpu_cifar10();
    scale.retrain_epochs = args.get_or("epochs", 3);
    let kind = ModelKind::LeNet;

    let circuit = if args.flag("wallace") {
        MultiplierCircuit::wallace(bits)
    } else {
        MultiplierCircuit::array(bits)
    };
    let base_name = format!(
        "mul{bits}u_{}",
        if args.flag("wallace") {
            "wallace"
        } else {
            "array"
        }
    );
    let total_sites = fault_sites(circuit.netlist()).len();
    eprintln!("[fault] {base_name}: {total_sites} injectable fault sites");

    eprintln!("[fault] generating workload + pretraining float LeNet...");
    let workload = Workload::generate(&scale);
    let (mut pretrained, float_top1) = pretrain_float(kind, &scale, &workload);
    eprintln!("[fault] float accuracy {:.2}%", float_top1 * 100.0);

    let mut rows = vec![];
    let mut csv = String::from(
        "multiplier,faults,nmed_pct,initial_pct,ste_pct,ours_pct,ste_rollbacks,ours_rollbacks,scrubbed\n",
    );
    for &count in &fault_counts {
        let faults = draw_faults(&circuit, count, seed.wrapping_add(count as u64));
        let faulty = FaultyMultiplier::from_circuit(&base_name, &circuit, &faults)
            .expect("sites come from fault_sites");
        let lut = Arc::new(faulty.into_lut());
        let nmed = ErrorMetrics::exhaustive(&lut).nmed_pct();

        let mut run = |mode: GradientMode| {
            retrain_with_multiplier_resilient(
                kind,
                &scale,
                &workload,
                &mut pretrained,
                &lut,
                mode,
                Some(ResiliencePolicy::default()),
            )
        };
        let ste = run(GradientMode::Ste);
        let ours = run(GradientMode::difference_based(hws));
        let scrubbed = ste.history.total_scrubbed_grads() + ours.history.total_scrubbed_grads();
        eprintln!(
            "[fault] {count} faults (NMED {nmed:.3}%): initial {:.2}%, STE {:.2}% ({} rollbacks), ours {:.2}% ({} rollbacks)",
            ste.initial_pct(),
            ste.final_pct(),
            ste.history.total_rollbacks(),
            ours.final_pct(),
            ours.history.total_rollbacks(),
        );
        csv.push_str(&format!(
            "{base_name},{count},{nmed:.4},{:.3},{:.3},{:.3},{},{},{}\n",
            ste.initial_pct(),
            ste.final_pct(),
            ours.final_pct(),
            ste.history.total_rollbacks(),
            ours.history.total_rollbacks(),
            scrubbed,
        ));
        rows.push(vec![
            count.to_string(),
            format!("{nmed:.3}"),
            format!("{:.2}", ste.initial_pct()),
            format!("{:.2}", ste.final_pct()),
            format!("{:.2}", ours.final_pct()),
            format!("{:+.2}", ours.final_pct() - ste.final_pct()),
            (ste.history.total_rollbacks() + ours.history.total_rollbacks()).to_string(),
        ]);
    }

    let header = [
        "Faults",
        "NMED %",
        "Initial %",
        "STE %",
        "Ours %",
        "Ours-STE",
        "Rollbacks",
    ];
    let table = markdown_table(&header, &rows);
    println!(
        "\n## Retraining accuracy vs fault count ({base_name}, float {:.2}%)\n",
        float_top1 * 100.0
    );
    println!("{table}");
    let md = format!(
        "# Fault sweep: {base_name}\n\nfloat accuracy {:.2}% | hws {hws} | seed {seed} | {} retrain epochs\n\n{table}",
        float_top1 * 100.0,
        scale.retrain_epochs,
    );
    let path = write_results("fault_sweep.md", &md);
    let csv_path = write_results("fault_sweep.csv", &csv);
    eprintln!(
        "[fault] wrote {} and {}",
        path.display(),
        csv_path.display()
    );
}
