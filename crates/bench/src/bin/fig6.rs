//! Reproduces **Fig. 6**: top-5 test-accuracy curves per epoch for
//! ResNet-34 (a) and ResNet-50 (b) with the 6-bit `mul6u_rm4` on the
//! CIFAR-100-like task, STE vs difference-based gradients.
//!
//! Usage:
//!
//! ```text
//! cargo run -p appmult-bench --release --bin fig6
//! cargo run -p appmult-bench --release --bin fig6 -- --epochs 12
//! ```
//!
//! Emits `results/fig6.csv` with one row per (model, method, epoch).

use std::sync::Arc;

use appmult_bench::{
    pretrain_float, retrain_with_multiplier, write_results, Args, ModelKind, Scale, Workload,
};
use appmult_models::ResNetDepth;
use appmult_mult::{zoo, Multiplier};
use appmult_retrain::GradientMode;

fn main() {
    let args = Args::from_env();
    let mut scale = Scale::cpu_cifar100();
    scale.model.width_div = 12; // R34/R50 are deep; keep the sweep CPU-sized
    scale.retrain_epochs = args.get_or("epochs", scale.retrain_epochs);

    let entry = zoo::entry("mul6u_rm4").expect("known");
    let lut = Arc::new(entry.multiplier.to_lut());
    let hws = entry.recommended_hws();

    let mut csv = String::from("model,method,epoch,top5_pct,top1_pct\n");
    println!("## Fig. 6 — top-5 accuracy vs epoch (mul6u_rm4, CIFAR-100-like)\n");
    let workload = Workload::generate(&scale);

    for (model_label, depth) in [
        ("ResNet34", ResNetDepth::R34),
        ("ResNet50", ResNetDepth::R50),
    ] {
        let kind = ModelKind::ResNet(depth);
        eprintln!("[fig6] pretraining float {model_label}...");
        let t = std::time::Instant::now();
        let (mut pretrained, float_top1) = pretrain_float(kind, &scale, &workload);
        eprintln!(
            "[fig6] {model_label} float top-1 {:.2}% ({:.1?})",
            float_top1 * 100.0,
            t.elapsed()
        );
        let mut finals = vec![];
        for (method, mode) in [
            ("ste", GradientMode::Ste),
            ("ours", GradientMode::difference_based(hws)),
        ] {
            let t = std::time::Instant::now();
            let outcome =
                retrain_with_multiplier(kind, &scale, &workload, &mut pretrained, &lut, mode);
            for e in &outcome.history.epochs {
                if let (Some(t5), Some(t1)) = (e.test_top5, e.test_top1) {
                    csv.push_str(&format!(
                        "{model_label},{method},{},{:.4},{:.4}\n",
                        e.epoch,
                        t5 * 100.0,
                        t1 * 100.0
                    ));
                }
            }
            let top5 = outcome.history.final_top5() * 100.0;
            eprintln!(
                "[fig6] {model_label} {method}: final top-5 {top5:.2}% ({:.1?})",
                t.elapsed()
            );
            finals.push((method, top5, outcome));
        }
        println!("{model_label}:");
        for (method, top5, outcome) in &finals {
            let curve: Vec<String> = outcome
                .history
                .epochs
                .iter()
                .filter_map(|e| e.test_top5)
                .map(|v| format!("{:.1}", v * 100.0))
                .collect();
            println!(
                "  {method:>4} top-5 per epoch: [{}] -> final {top5:.2}%",
                curve.join(", ")
            );
        }
        let gap = finals[1].1 - finals[0].1;
        println!("  ours - STE (final top-5): {gap:+.2} points\n");
    }

    let path = write_results("fig6.csv", &csv);
    println!("Series written to {}", path.display());
}
