//! Reproduces **Fig. 3**: the staircase AppMult slice `AM(W_f = 10, X)`,
//! its Eq. 4 smoothing (HWS = 4), the AccMult line, and the
//! difference-based vs STE gradients for the 7-bit `rm6` multiplier.
//!
//! Usage:
//!
//! ```text
//! cargo run -p appmult-bench --release --bin fig3
//! cargo run -p appmult-bench --release --bin fig3 -- --wf 10 --hws 4
//! ```
//!
//! Emits `results/fig3.csv` with the four series and prints the landmark
//! values (the jumps at X = 31, 63, 95 that the paper's red arrows mark).

use appmult_bench::{fig3_csv, write_results, Args};
use appmult_mult::{zoo, Multiplier};
use appmult_retrain::{GradientLut, GradientMode};

fn main() {
    let args = Args::from_env();
    let wf: u32 = args.get_or("wf", 10);
    let hws: u32 = args.get_or("hws", 4);

    let lut = zoo::mul7u_rm6().to_lut();
    let row = lut.row(wf).to_vec();
    let ours = GradientLut::build(&lut, GradientMode::difference_based(hws));
    let ste = GradientLut::build(&lut, GradientMode::Ste);
    let raw = GradientLut::build(&lut, GradientMode::RawDifference);
    let path = write_results("fig3.csv", &fig3_csv(&lut, wf, hws));

    println!("## Fig. 3 — AM(W_f = {wf}, X) for mul7u_rm6 (HWS = {hws})\n");
    println!("Landmarks (the paper's red arrows at X = 31, 63, 95):");
    for jump in [31u32, 63, 95] {
        let step = row[jump as usize + 1] as i64 - row[jump as usize] as i64;
        println!(
            "  X = {jump:3}: AM jumps by {step:+5} | grad_diff near jump = {:.2} | grad_ste = {:.2}",
            (jump.saturating_sub(1)..=jump + 1)
                .map(|x| ours.wrt_x(wf, x))
                .fold(f32::MIN, f32::max),
            ste.wrt_x(wf, jump),
        );
    }
    let zero_raw = (1..127).filter(|&x| raw.wrt_x(wf, x) == 0.0).count();
    let zero_smooth = (0..128).filter(|&x| ours.wrt_x(wf, x) == 0.0).count();
    println!(
        "\nZero-gradient points: raw difference = {zero_raw}/126, smoothed = {zero_smooth}/128"
    );
    println!("Series written to {}", path.display());
}
