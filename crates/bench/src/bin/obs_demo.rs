//! `obs_demo` — a small retraining run with full observability enabled.
//!
//! Retrains a two-layer AppMult model (see `appmult_bench::run_obs_demo`)
//! with a recording sink installed both process-wide (for the GEMM/LUT/pool
//! kernels) and in the `RetrainConfig` (for the loop's spans and per-epoch
//! events). A mid-run learning-rate spike provokes the resilience policy so
//! the report also shows interventions.
//!
//! Writes the `appmult-obs/v1` report to `results/OBS.json`, the raw event
//! stream to `results/OBS_events.jsonl`, and prints the end-of-run summary
//! table.

use appmult_bench::{run_obs_demo, write_results};

fn main() {
    let demo = run_obs_demo();
    println!("{}", demo.summary);
    println!(
        "demo run: {} epochs, final train loss {:.4}, final top-1 {:.3}, {} rollbacks",
        demo.history.epochs.len(),
        demo.history.final_train_loss(),
        demo.history.final_top1(),
        demo.history.total_rollbacks(),
    );
    let report = write_results("OBS.json", &demo.report_json);
    let events = write_results("OBS_events.jsonl", &demo.events_jsonl);
    println!("wrote {}", report.display());
    println!("wrote {}", events.display());
}
