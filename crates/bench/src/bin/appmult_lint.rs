//! `appmult-lint`: static verification sweep over the multiplier zoo.
//!
//! Runs every `appmult-verify` pass — structural netlist lints, the static
//! analysis stack (timing, structural hashing, ternary constant
//! propagation), miter equivalence against the exact array multiplier, LUT
//! metric sanity, and Eq. 5/6 gradient consistency — over all Table I
//! designs (including the cached `_syn` synthesis results) plus
//! deliberately faulty negative controls. Prints a human-readable table
//! with the per-design critical path, writes the machine-readable reports
//! to `results/LINT.json` (`appmult-lint/v2`) and `results/ANALYZE.json`
//! (`appmult-analyze/v1`), and exits:
//!
//! - `0` when the sweep is clean,
//! - `1` when any design carries an error diagnostic,
//! - `2` when `--fail-on-warn` is given and the sweep carries warnings
//!   (but no errors; errors always win).
//!
//! ```text
//! cargo run --release -p appmult-bench --bin appmult-lint -- [--fail-on-warn]
//! ```

use std::process::ExitCode;

use appmult_bench::{markdown_table, write_results, Args};
use appmult_verify::{lint_zoo, MultiplierEquiv, Severity};

fn main() -> ExitCode {
    let args = Args::from_env();
    let fail_on_warn = args.flag("fail-on-warn");
    let report = lint_zoo();

    let rows: Vec<Vec<String>> = report
        .designs
        .iter()
        .map(|d| {
            let equivalence = match &d.equivalence {
                Some(MultiplierEquiv::Equivalent {
                    patterns,
                    exhaustive: true,
                }) => format!("equivalent (proved, {patterns} patterns)"),
                Some(MultiplierEquiv::Equivalent {
                    patterns,
                    exhaustive: false,
                }) => format!("equivalent (sampled, {patterns} patterns)"),
                Some(MultiplierEquiv::Counterexample(c)) => format!("differs: {c}"),
                None => "-".to_string(),
            };
            let (delay, depth) = match &d.analysis {
                Some(a) => (format!("{:.1}", a.cost.delay_ps), a.depth.to_string()),
                None => ("-".to_string(), "-".to_string()),
            };
            vec![
                d.name.clone(),
                d.bits.to_string(),
                d.kind.as_str().to_string(),
                d.error_count().to_string(),
                d.warning_count().to_string(),
                delay,
                depth,
                equivalence,
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "design",
                "bits",
                "kind",
                "errors",
                "warnings",
                "delay_ps",
                "depth",
                "equivalence vs exact"
            ],
            &rows
        )
    );

    // The slowest design's critical path, gate by gate.
    if let Some(d) = report
        .designs
        .iter()
        .filter(|d| d.analysis.is_some())
        .max_by(|x, y| {
            let dx = x.analysis.as_ref().map_or(0.0, |a| a.cost.delay_ps);
            let dy = y.analysis.as_ref().map_or(0.0, |a| a.cost.delay_ps);
            dx.total_cmp(&dy)
        })
    {
        let a = d.analysis.as_ref().expect("filtered to analyzed designs");
        println!(
            "\ncritical path of {} ({:.1} ps, {} gates):",
            d.name,
            a.cost.delay_ps,
            a.critical_path.len()
        );
        for g in &a.critical_path {
            println!(
                "  {:>6}  {:<5}  +{:>5.1} ps  @ {:>7.1} ps",
                format!("{}", g.signal),
                format!("{}", g.kind),
                g.delay_ps,
                g.arrival_ps
            );
        }
    }

    for d in &report.designs {
        for diag in &d.diagnostics {
            if diag.severity >= Severity::Warning {
                println!("{}: {diag}", d.name);
            }
        }
    }

    let lint_path = write_results("LINT.json", &report.to_json());
    let analyze_path = write_results("ANALYZE.json", &report.analysis_json());
    println!(
        "\n{} designs, {} errors, {} warnings -> {} + {}",
        report.designs.len(),
        report.error_count(),
        report.warning_count(),
        lint_path.display(),
        analyze_path.display()
    );

    if report.error_count() > 0 {
        ExitCode::from(1)
    } else if fail_on_warn && report.warning_count() > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
