//! `appmult-lint`: static verification sweep over the multiplier zoo.
//!
//! Runs every `appmult-verify` pass — structural netlist lints, miter
//! equivalence against the exact array multiplier, LUT metric sanity, and
//! Eq. 5/6 gradient consistency — over all Table I designs (including the
//! cached `_syn` synthesis results) plus deliberately faulty negative
//! controls. Prints a human-readable table, writes the machine-readable
//! report to `results/LINT.json`, and exits nonzero if any design carries
//! an error diagnostic.
//!
//! ```text
//! cargo run --release -p appmult-bench --bin appmult-lint
//! ```

use std::process::ExitCode;

use appmult_bench::{markdown_table, write_results};
use appmult_verify::{lint_zoo, MultiplierEquiv, Severity};

fn main() -> ExitCode {
    let report = lint_zoo();

    let rows: Vec<Vec<String>> = report
        .designs
        .iter()
        .map(|d| {
            let equivalence = match &d.equivalence {
                Some(MultiplierEquiv::Equivalent {
                    patterns,
                    exhaustive: true,
                }) => format!("equivalent (proved, {patterns} patterns)"),
                Some(MultiplierEquiv::Equivalent {
                    patterns,
                    exhaustive: false,
                }) => format!("equivalent (sampled, {patterns} patterns)"),
                Some(MultiplierEquiv::Counterexample(c)) => format!("differs: {c}"),
                None => "-".to_string(),
            };
            vec![
                d.name.clone(),
                d.bits.to_string(),
                d.kind.as_str().to_string(),
                d.error_count().to_string(),
                d.warning_count().to_string(),
                equivalence,
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "design",
                "bits",
                "kind",
                "errors",
                "warnings",
                "equivalence vs exact"
            ],
            &rows
        )
    );

    for d in &report.designs {
        for diag in &d.diagnostics {
            if diag.severity >= Severity::Warning {
                println!("{}: {diag}", d.name);
            }
        }
    }

    let path = write_results("LINT.json", &report.to_json());
    println!(
        "\n{} designs, {} errors, {} warnings -> {}",
        report.designs.len(),
        report.error_count(),
        report.warning_count(),
        path.display()
    );

    if report.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
