//! `dse`: closed-loop multiplier design-space exploration.
//!
//! Seeds a μ+λ evolutionary search with the zoo's gate-level designs of
//! the requested width, mutates netlists (gate substitution, fanin
//! rewire, const-tie, cone deletion), validates every candidate with the
//! `appmult-verify` analysis oracle, and selects on the three-axis
//! (hardware, error, gradient-proxy) Pareto rank. Prints the frontier
//! summary, writes `results/DSE.json` (`appmult-dse/v1`), and exits:
//!
//! - `0` on a nonzero frontier,
//! - `1` when the frontier is empty (search degenerated),
//! - `2` when `--require-dominance` is given and no frontier design
//!   strictly dominates a seed zoo design on (delay, NMED).
//!
//! ```text
//! cargo run --release -p appmult-bench --bin dse -- \
//!     [--bits 6] [--seed 1] [--mu 8] [--lambda 24] [--generations 10] \
//!     [--max-mutations 2] [--include-syn] [--rung] \
//!     [--frontier-out PATH] [--require-dominance]
//! ```
//!
//! `--frontier-out` additionally writes the frontier-only document that
//! must be byte-identical across thread counts for a fixed seed — the
//! artifact the CI determinism check compares.

use std::process::ExitCode;

use appmult_bench::dse_driver::{run_dse_bench, DseBenchConfig};
use appmult_bench::{write_results, Args};

fn main() -> ExitCode {
    let args = Args::from_env();
    let mut cfg = DseBenchConfig::smoke(args.get_or("seed", 1u64));
    cfg.bits = args.get_or("bits", cfg.bits);
    cfg.mu = args.get_or("mu", cfg.mu);
    cfg.lambda = args.get_or("lambda", cfg.lambda);
    cfg.generations = args.get_or("generations", cfg.generations);
    cfg.max_mutations = args.get_or("max-mutations", cfg.max_mutations);
    cfg.include_syn = args.flag("include-syn");
    cfg.rung = args.flag("rung");

    let outcome = run_dse_bench(&cfg);

    println!(
        "# DSE: {}-bit, seed {}, mu {}, lambda {}, {} generations\n",
        cfg.bits, cfg.seed, cfg.mu, cfg.lambda, cfg.generations
    );
    println!("{}", outcome.summary);
    println!(
        "evaluated {} candidates ({} invalid, discarded); frontier size {}; {} design(s) dominate a zoo baseline",
        outcome.result.evaluated,
        outcome.result.invalid,
        outcome.result.frontier.len(),
        outcome.dominating_designs()
    );
    for baseline in &outcome.baselines {
        println!(
            "baseline {}: delay {:.1} ps, nmed {:.4}%",
            baseline.name,
            baseline.delay_ps,
            baseline.nmed * 100.0
        );
    }

    let path = write_results("DSE.json", &outcome.json);
    println!("wrote {}", path.display());
    if let Some(out) = args.value("frontier-out") {
        std::fs::write(out, &outcome.frontier_json).expect("write frontier file");
        println!("wrote {out}");
    }

    if outcome.result.frontier.is_empty() {
        eprintln!("error: empty Pareto frontier");
        return ExitCode::from(1);
    }
    if args.flag("require-dominance") && outcome.dominating_designs() == 0 {
        eprintln!("error: no frontier design dominates a seed zoo design on (delay, NMED)");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
