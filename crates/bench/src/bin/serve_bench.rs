//! `serve_bench` — open-loop load driver for the `appmult-serve` engine.
//!
//! Estimates the engine's service capacity, then drives three open-loop
//! phases against it: `steady` (~0.5x capacity), `overload` (>= 2x
//! capacity, mixed priorities, short deadlines on part of the traffic,
//! a mid-phase model eviction + reload, and chaos-injected worker
//! panics), and `recovery` (back to ~0.5x). One of the two registered
//! models runs on a fault-injected LUT (`FaultyMultiplier::corrupt_lut`)
//! to show the engine serving through silicon-fault-corrupted tables.
//!
//! Every submission is accounted for: it either resolves to a served
//! output or to exactly one typed rejection, and the binary asserts the
//! books balance (zero lost requests) unconditionally. With
//! `--assert-overload` (the `serve-smoke` CI job) it additionally
//! requires a nonzero shed count under overload and at least one worker
//! panic recovered by a model rebuild, with requests still served
//! afterwards.
//!
//! Writes `results/BENCH_serve.json` with a `config` header (threads,
//! kernel, batch policy) so the numbers are interpretable without the
//! environment that produced them.
//!
//! Flags: `--duration-ms N` per-phase driving time (default 250),
//! `--overload-x F` overload multiple of capacity (default 2.5),
//! `--chaos N` panic every Nth batch (default 7, `0` disables),
//! `--assert-overload` enable the CI assertions.

use std::collections::BTreeMap;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use appmult_bench::{markdown_table, write_results, Args};
use appmult_mult::{FaultyMultiplier, Multiplier};
use appmult_nn::layers::{Relu, Sequential};
use appmult_nn::Tensor;
use appmult_pool::Pool;
use appmult_retrain::{ApproxLinear, GradientLut, GradientMode, QuantConfig};
use appmult_rng::Rng64;
use appmult_serve::{Engine, EngineConfig, ModelSpec, Priority, Registry, Request, Ticket};

const IN_DIM: usize = 32;
const HIDDEN: usize = 8;

/// One resolved request: phase index, outcome label (`"ok"` or the
/// rejection label), and client-observed latency in milliseconds.
type Outcome = (usize, &'static str, f64);

/// Mutable driver state threaded through both the closed-loop capacity
/// estimate and the open-loop phases.
struct Driver {
    seq: usize,
    submitted: [usize; 4],
    admission_rejects: Vec<(usize, &'static str)>,
    inputs: Vec<Tensor>,
}

impl Driver {
    /// Builds the next request in the deterministic traffic mix: 1 in 5
    /// targets the fault-injected model, priorities cycle through all
    /// three lanes, every 4th carries a 20 ms deadline, and every 16th
    /// input holds a NaN to exercise scrubbing.
    fn next_request(&mut self, phase: usize) -> Request {
        let seq = self.seq;
        self.seq += 1;
        self.submitted[phase] += 1;
        let model = if seq.is_multiple_of(5) {
            "faulty"
        } else {
            "clean"
        };
        let mut req = Request::new(model, self.inputs[seq % self.inputs.len()].clone());
        req.priority = match seq % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        if seq.is_multiple_of(4) {
            req = req.with_deadline(Duration::from_millis(20));
        }
        req
    }
}

fn spec(name: &str, registry: &Registry, faulty: bool) -> ModelSpec {
    // Both models share the registry's LUT cache; the faulty one runs on
    // a bit-flip-corrupted copy of the same multiplier.
    let key = if faulty {
        "mul7u_rm6+faults"
    } else {
        "mul7u_rm6"
    };
    let (lut, grads) = registry.lut(key, || {
        let clean = appmult_mult::zoo::mul7u_rm6().to_lut();
        let lut = if faulty {
            FaultyMultiplier::corrupt_lut(&clean, 48, 0xFA117).into_lut()
        } else {
            clean
        };
        let grads = GradientLut::build(&lut, GradientMode::difference_based(8));
        (lut, grads)
    });
    ModelSpec {
        name: name.to_string(),
        input_shape: vec![IN_DIM],
        factory: Arc::new(move || {
            Sequential::new()
                .push(ApproxLinear::new(
                    IN_DIM,
                    HIDDEN,
                    11,
                    lut.clone(),
                    grads.clone(),
                    QuantConfig::default(),
                ))
                .push(Relu::new())
        }),
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = Args::from_env();
    let duration = Duration::from_millis(args.get_or("duration-ms", 250u64));
    let overload_x = args.get_or("overload-x", 2.5f64);
    let chaos = args.get_or("chaos", 7u64);
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let obs = appmult_obs::ObsSink::recording();
    appmult_obs::set_global(&obs);

    let registry = Arc::new(Registry::new(4));
    registry
        .load(spec("clean", &registry, false))
        .expect("load clean");
    registry
        .load(spec("faulty", &registry, true))
        .expect("load faulty");

    let cfg = EngineConfig {
        queue_capacity: 48,
        workers: (host / 2).clamp(2, 4),
        max_batch: 16,
        max_batch_wait: Duration::from_millis(1),
        retry_after: Duration::from_millis(5),
        scrub_nonfinite: true,
        chaos_panic_every: (chaos > 0).then_some(chaos),
        ..EngineConfig::default()
    };
    let cfg_header = cfg.describe();
    let workers = cfg.workers;
    let engine = Engine::start(Arc::clone(&registry), cfg);
    println!(
        "serve_bench: {} pool threads, {workers} serve workers, chaos every {chaos} batches",
        Pool::global().threads(),
    );

    let mut rng = Rng64::seed_from_u64(0x5E7E);
    let mut driver = Driver {
        seq: 0,
        submitted: [0; 4],
        admission_rejects: Vec::new(),
        inputs: (0..32)
            .map(|i: usize| {
                let mut data: Vec<f32> = (0..IN_DIM).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
                if i.is_multiple_of(16) {
                    data[0] = f32::NAN;
                }
                Tensor::from_vec(data, &[IN_DIM])
            })
            .collect(),
    };

    // A collector thread resolves tickets off the submission path so the
    // driver stays open-loop; latency is client-observed submit-to-resolve.
    let (tx, rx) = mpsc::channel::<(usize, Ticket, Instant)>();
    let outcomes: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::new()));
    let collector = {
        let outcomes = Arc::clone(&outcomes);
        std::thread::spawn(move || {
            while let Ok((phase, ticket, t0)) = rx.recv() {
                let label = match ticket.wait() {
                    Ok(_) => "ok",
                    Err(r) => r.label(),
                };
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                outcomes.lock().expect("outcomes").push((phase, label, ms));
            }
        })
    };

    // ---- Phase 0: capacity estimate (saturation burst) ----
    //
    // Submit as fast as admission allows for a fixed window, backing off
    // briefly on `QueueFull` so the queue stays pinned at capacity and the
    // workers never idle. The dispatch counter delta over the window is
    // the true service capacity — a closed-loop estimate would be
    // dominated by the batch-flush wait and undershoot by an order of
    // magnitude, leaving the "overload" phase below real capacity.
    let est_t0 = Instant::now();
    let est_window = duration.min(Duration::from_millis(150));
    let dispatched_before = obs.counter("serve.batch.jobs_dispatched");
    while est_t0.elapsed() < est_window {
        let req = driver.next_request(0);
        let at = Instant::now();
        match engine.submit(req) {
            Ok(ticket) => tx.send((0, ticket, at)).expect("collector alive"),
            Err(r) => {
                driver.admission_rejects.push((0, r.label()));
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
    let est_elapsed = est_t0.elapsed().as_secs_f64();
    let dispatched = obs.counter("serve.batch.jobs_dispatched") - dispatched_before;
    let capacity_rps = (dispatched as f64 / est_elapsed).max(200.0);
    println!("estimated capacity: {capacity_rps:.0} req/s (saturation burst)");

    // ---- Phases 1-3: open-loop driving at a target rate ----
    let phases = [
        ("steady", capacity_rps * 0.5),
        ("overload", capacity_rps * overload_x),
        ("recovery", capacity_rps * 0.5),
    ];
    for (pi, (name, rate)) in phases.iter().enumerate() {
        let phase = pi + 1;
        let t0 = Instant::now();
        let mut sent = 0usize;
        let mut evicted = false;
        let mut reloaded = false;
        while t0.elapsed() < duration {
            // Overload chaos: evict the faulty model mid-phase, reload it
            // at the three-quarter mark.
            if *name == "overload" {
                let frac = t0.elapsed().as_secs_f64() / duration.as_secs_f64();
                if !evicted && frac >= 0.5 {
                    registry.unload("faulty");
                    evicted = true;
                } else if !reloaded && frac >= 0.75 {
                    registry
                        .load(spec("faulty", &registry, true))
                        .expect("reload");
                    reloaded = true;
                }
            }
            let target = (t0.elapsed().as_secs_f64() * rate) as usize;
            while sent < target {
                let req = driver.next_request(phase);
                let at = Instant::now();
                match engine.submit(req) {
                    Ok(ticket) => tx.send((phase, ticket, at)).expect("collector alive"),
                    Err(r) => driver.admission_rejects.push((phase, r.label())),
                }
                sent += 1;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        println!(
            "phase {name}: submitted {} at {rate:.0} req/s",
            driver.submitted[phase]
        );
    }

    // Drain: close the collector channel and wait for every ticket.
    drop(tx);
    collector.join().expect("collector");
    engine.shutdown();
    appmult_obs::set_global(&appmult_obs::ObsSink::null());

    // ---- Accounting: every submission resolved exactly once ----
    let outcomes = Arc::try_unwrap(outcomes)
        .map(|m| m.into_inner().expect("outcomes"))
        .unwrap_or_default();
    let phase_names = ["estimate", "steady", "overload", "recovery"];
    let labels = [
        "ok",
        "queue_full",
        "shed",
        "deadline",
        "model_unloaded",
        "invalid_input",
        "worker_panic",
        "shutting_down",
    ];
    let mut counts = vec![BTreeMap::<&str, usize>::new(); 4];
    for &(phase, label, _) in &outcomes {
        *counts[phase].entry(label).or_insert(0) += 1;
    }
    for &(phase, label) in &driver.admission_rejects {
        *counts[phase].entry(label).or_insert(0) += 1;
    }
    let total_submitted: usize = driver.submitted.iter().sum();
    let total_resolved: usize = counts.iter().flat_map(BTreeMap::values).sum();
    let lost = total_submitted.saturating_sub(total_resolved);
    let served: usize = counts
        .iter()
        .map(|c| c.get("ok").copied().unwrap_or(0))
        .sum();
    let shed_total: usize = counts
        .iter()
        .flat_map(|c| [c.get("shed"), c.get("queue_full")])
        .flatten()
        .sum();

    let mut ok_ms: Vec<f64> = outcomes
        .iter()
        .filter(|(_, l, _)| *l == "ok")
        .map(|&(_, _, ms)| ms)
        .collect();
    let mut rej_ms: Vec<f64> = outcomes
        .iter()
        .filter(|(_, l, _)| *l != "ok")
        .map(|&(_, _, ms)| ms)
        .collect();
    ok_ms.sort_by(f64::total_cmp);
    rej_ms.sort_by(f64::total_cmp);

    let table = markdown_table(
        &["phase", "submitted", "ok", "rejected"],
        &phase_names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let ok = counts[i].get("ok").copied().unwrap_or(0);
                vec![
                    (*name).to_string(),
                    driver.submitted[i].to_string(),
                    ok.to_string(),
                    (counts[i].values().sum::<usize>() - ok).to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\n{table}");
    println!(
        "served {served}/{total_submitted}, shed {shed_total}, lost {lost}; \
         ok p50 {:.2} ms p99 {:.2} ms; reject p50 {:.2} ms p99 {:.2} ms",
        percentile(&ok_ms, 0.50),
        percentile(&ok_ms, 0.99),
        percentile(&rej_ms, 0.50),
        percentile(&rej_ms, 0.99),
    );
    let panics = obs.counter("serve.worker.panics");
    let rebuilds = obs.counter("serve.model.rebuilds");
    let scrubbed = obs.counter("serve.input.scrubbed");
    let deadline_dropped = obs.counter("serve.deadline.dropped_pre_dispatch");
    println!(
        "worker panics {panics}, model rebuilds {rebuilds}, inputs scrubbed {scrubbed}, \
         deadline-dropped pre-dispatch {deadline_dropped}"
    );

    // ---- results/BENCH_serve.json with a self-describing config header ----
    let mut config_fields: Vec<(String, String)> = vec![
        ("threads".to_string(), Pool::global().threads().to_string()),
        (
            "kernel".to_string(),
            format!("\"{}\"", appmult_kernels::Kernel::global().label()),
        ),
    ];
    config_fields.extend(
        cfg_header
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone())),
    );
    let config_json: Vec<String> = config_fields
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();
    let phase_json: Vec<String> = phase_names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let by_label: Vec<String> = labels
                .iter()
                .map(|l| format!("\"{l}\": {}", counts[i].get(l).copied().unwrap_or(0)))
                .collect();
            format!(
                "    {{\"phase\": \"{name}\", \"submitted\": {}, {}}}",
                driver.submitted[i],
                by_label.join(", ")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"config\": {{\n{}\n  }},\n  \"capacity_rps\": {capacity_rps:.1},\n  \
         \"overload_x\": {overload_x},\n  \"duration_ms\": {},\n  \"phases\": [\n{}\n  ],\n  \
         \"totals\": {{\"submitted\": {total_submitted}, \"served\": {served}, \
         \"shed\": {shed_total}, \"lost\": {lost}}},\n  \
         \"latency_ms\": {{\"ok_p50\": {:.3}, \"ok_p99\": {:.3}, \
         \"reject_p50\": {:.3}, \"reject_p99\": {:.3}}},\n  \
         \"faults\": {{\"worker_panics\": {panics}, \"model_rebuilds\": {rebuilds}, \
         \"inputs_scrubbed\": {scrubbed}, \"deadline_dropped\": {deadline_dropped}}}\n}}\n",
        config_json.join(",\n"),
        duration.as_millis(),
        phase_json.join(",\n"),
        percentile(&ok_ms, 0.50),
        percentile(&ok_ms, 0.99),
        percentile(&rej_ms, 0.50),
        percentile(&rej_ms, 0.99),
    );
    let path = write_results("BENCH_serve.json", &json);
    println!("wrote {}", path.display());

    // Unconditional: the books must balance. Nothing vanishes under load.
    assert_eq!(
        lost, 0,
        "{total_submitted} submitted but only {total_resolved} resolved"
    );
    assert!(served > 0, "the engine served nothing at all");

    if args.flag("assert-overload") {
        assert!(
            shed_total > 0,
            "overload at {overload_x}x capacity must shed load (shed+queue_full == 0)"
        );
        if chaos > 0 {
            // Chaos panics fire before dispatch (exactly-once guarantee),
            // so they exercise requeue-or-reject but never poison the
            // model; rebuilds are covered by the registry's unit tests.
            assert!(panics > 0, "chaos was enabled but no worker panic fired");
        }
        let recovery_ok = counts[3].get("ok").copied().unwrap_or(0);
        assert!(
            recovery_ok > 0,
            "no requests served in the recovery phase after overload + panics"
        );
        println!("overload assertions hold: shed {shed_total}, panics {panics}, recovered");
    }
}
