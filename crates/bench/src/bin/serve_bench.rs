//! Open-loop serving benchmark for `appmult-serve` — the CI overload and
//! fairness gate.
//!
//! Thin CLI wrapper over [`appmult_bench::serve_driver::run_serve_bench`]:
//! estimates engine capacity, then drives `steady` / `overload` /
//! `recovery` / `multimodel` phases and writes `results/BENCH_serve.json`
//! with per-phase outcome counts, per-phase latency budgets and the
//! multi-model fairness accounting.
//!
//! Flags: `--duration-ms N` (per phase, default 250), `--overload-x F`
//! (default 2.5), `--chaos N` (panic every Nth batch, 0 disables, default
//! 7), `--assert-overload` (shed under overload + panic recovery must
//! hold), `--assert-fairness` (every model's multimodel throughput share
//! must stay at or above half its fair share and per-phase ok-p99 must fit
//! the SLO budget).

use appmult_bench::serve_driver::{run_serve_bench, ServeBenchOptions};
use appmult_bench::Args;

fn main() {
    let opts = ServeBenchOptions::from_args(&Args::from_env());
    let report = run_serve_bench(&opts);
    println!(
        "serve_bench done: served {}/{} (shed {}, lost {}), capacity {:.0} req/s, \
         multimodel min share {:.3} (bound {:.3})",
        report.served,
        report.submitted,
        report.shed,
        report.lost,
        report.capacity_rps,
        report.min_share,
        report.share_bound,
    );
}
