//! Reproduces **Table I**: characteristics of the tested multipliers —
//! area / delay / power from the calibrated gate-level cost model, and
//! ER / NMED / MaxED from exhaustive enumeration under a uniform input
//! distribution (Eq. 2), next to the paper's published values.
//!
//! Usage:
//!
//! ```text
//! cargo run -p appmult-bench --release --bin table1
//! cargo run -p appmult-bench --release --bin table1 -- --skip-syn
//! ```
//!
//! `--skip-syn` omits the four `_syn` entries (their ALS runs take a few
//! seconds each on one core).

use appmult_bench::{markdown_table, write_results, Args};
use appmult_circuit::CostModel;
use appmult_mult::zoo::{self, Fidelity};
use appmult_mult::{ErrorMetrics, Multiplier};

fn main() {
    let args = Args::from_env();
    let skip_syn = args.flag("skip-syn");
    let model = CostModel::asap7();

    let mut rows = Vec::new();
    let mut csv = String::from(
        "name,fidelity,area_um2,delay_ps,power_uw,er_pct,nmed_pct,max_ed,hws,\
         paper_area,paper_delay,paper_power,paper_er,paper_nmed,paper_maxed\n",
    );
    for name in zoo::names() {
        if skip_syn && name.contains("_syn") {
            continue;
        }
        eprintln!("[table1] {name}...");
        let entry = zoo::entry(name).expect("known");
        let lut = entry.multiplier.to_lut();
        let metrics = ErrorMetrics::exhaustive(&lut);
        let (cost, source) = match entry.multiplier.circuit() {
            Some(c) => (model.estimate(&c), "model"),
            None => (
                appmult_circuit::HardwareCost {
                    area_um2: entry.paper.area_um2,
                    delay_ps: entry.paper.delay_ps,
                    power_uw: entry.paper.power_uw,
                },
                "paper*",
            ),
        };
        let fidelity = match entry.fidelity {
            Fidelity::ExactSemantics => "exact",
            Fidelity::Surrogate => "surrogate",
            Fidelity::Synthesized => "synthesized",
        };
        let hws = entry
            .paper
            .hws
            .map(|h| h.to_string())
            .unwrap_or_else(|| "N/A".into());
        rows.push(vec![
            name.to_string(),
            fidelity.into(),
            format!("{:.1} ({})", cost.area_um2, source),
            format!("{:.1}", cost.delay_ps),
            format!("{:.2}", cost.power_uw),
            format!("{:.1} / {:.1}", metrics.er_pct(), entry.paper.er_pct),
            format!("{:.2} / {:.2}", metrics.nmed_pct(), entry.paper.nmed_pct),
            format!("{} / {}", metrics.max_ed, entry.paper.max_ed),
            hws.clone(),
        ]);
        csv.push_str(&format!(
            "{name},{fidelity},{:.2},{:.2},{:.3},{:.2},{:.4},{},{},{:.2},{:.2},{:.3},{:.2},{:.4},{}\n",
            cost.area_um2,
            cost.delay_ps,
            cost.power_uw,
            metrics.er_pct(),
            metrics.nmed_pct(),
            metrics.max_ed,
            hws,
            entry.paper.area_um2,
            entry.paper.delay_ps,
            entry.paper.power_uw,
            entry.paper.er_pct,
            entry.paper.nmed_pct,
            entry.paper.max_ed,
        ));
    }

    println!("\n## Table I — multiplier characteristics (measured / paper)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "Multiplier",
                "Fidelity",
                "Area um^2",
                "Delay ps",
                "Power uW",
                "ER % (ours/paper)",
                "NMED % (ours/paper)",
                "MaxED (ours/paper)",
                "HWS",
            ],
            &rows,
        )
    );
    println!(
        "(paper*) = behavioural-only surrogate: hardware cost taken from the \
         paper's published row; all error metrics are measured on our LUT."
    );
    let path = write_results("table1.csv", &csv);
    eprintln!("[table1] wrote {}", path.display());
}
