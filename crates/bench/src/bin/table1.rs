//! Reproduces **Table I**: characteristics of the tested multipliers —
//! area / delay / power from the calibrated gate-level cost model, and
//! ER / NMED / MaxED from exhaustive enumeration under a uniform input
//! distribution (Eq. 2), next to the paper's published values.
//!
//! Usage:
//!
//! ```text
//! cargo run -p appmult-bench --release --bin table1
//! cargo run -p appmult-bench --release --bin table1 -- --skip-syn
//! ```
//!
//! `--skip-syn` omits the four `_syn` entries (their ALS runs take a few
//! seconds each on one core).

use appmult_bench::{markdown_table, table1_row, write_results, Args, TABLE1_CSV_HEADER};
use appmult_circuit::CostModel;
use appmult_mult::zoo;

fn main() {
    let args = Args::from_env();
    let skip_syn = args.flag("skip-syn");
    let model = CostModel::asap7();

    let mut rows = Vec::new();
    let mut csv = String::from(TABLE1_CSV_HEADER);
    for name in zoo::names() {
        if skip_syn && name.contains("_syn") {
            continue;
        }
        eprintln!("[table1] {name}...");
        let entry = zoo::entry(name).expect("known");
        let row = table1_row(&entry, &model);
        rows.push(row.markdown_cells());
        csv.push_str(&row.csv_line());
    }

    println!("\n## Table I — multiplier characteristics (measured / paper)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "Multiplier",
                "Fidelity",
                "Area um^2",
                "Delay ps",
                "Power uW",
                "ER % (ours/paper)",
                "NMED % (ours/paper)",
                "MaxED (ours/paper)",
                "HWS",
            ],
            &rows,
        )
    );
    println!(
        "(paper*) = behavioural-only surrogate: hardware cost taken from the \
         paper's published row; all error metrics are measured on our LUT."
    );
    let path = write_results("table1.csv", &csv);
    eprintln!("[table1] wrote {}", path.display());
}
