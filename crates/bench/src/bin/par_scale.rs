//! `par_scale` — serial-vs-parallel throughput of the LUT kernels.
//!
//! Times the four parallelized hot paths — conv GEMM forward, conv GEMM
//! backward, gradient-LUT build, and exhaustive truth-table extraction —
//! once pinned to a single thread and once at the requested thread count,
//! and checks that every parallel result is bit-identical to the serial
//! one (the partitioning is over disjoint output rows, so it must be).
//!
//! Emits `results/BENCH_par.json` plus a console table. On a single-core
//! host the speedup hovers around 1.0x (the pool degrades to the serial
//! path); the bit-identity columns still exercise the full machinery.
//!
//! Flags: `--threads N` (default: `APPMULT_THREADS` or the host
//! parallelism, min 4), `--reps N` best-of repetitions (default 5),
//! `--assert-overhead PCT` to fail if the observability overhead of any
//! kernel exceeds `PCT` percent (used by the `obs-overhead` CI job), and
//! `--assert-small-shape` to fail if the parallel path is slower than
//! serial on the smallest swept shape (the pool's work-size floor must
//! degrade it to the serial path).
//!
//! Besides the serial-vs-parallel scaling table, the binary measures the
//! cost of the observability layer on the instrumented kernels: once with
//! the default null sink ("off" — the production configuration, whose
//! instrumentation is a handful of branches) and once with a recording
//! sink installed process-wide ("on"). Both are reported in
//! `results/BENCH_par.json` under `"obs"`.
//!
//! Finally, the binary sweeps the `appmult-kernels` engine — naive vs
//! tiled — over the LeNet conv2-shaped GEMM (M=512, J=16, K=150) at 1 and
//! 8 worker threads, interleaving reps and asserting naive/tiled
//! bit-identity in the same run. Results land in
//! `results/BENCH_kernels.json`; `--assert-kernel-speedup X` fails the run
//! if the tiled forward speedup drops below `X` at any thread count (the
//! `kernel-parity` CI job uses this).

use std::sync::Arc;
use std::time::Instant;

use appmult_bench::{markdown_table, write_results, Args};
use appmult_circuit::{ExhaustiveTable, MultiplierCircuit};
use appmult_kernels::{backward_dw, backward_dx, forward_acc, GemmShape, Kernel};
use appmult_mult::{Multiplier, TruncatedMultiplier};
use appmult_nn::{Module, Tensor};
use appmult_pool::{set_global_threads, Pool};
use appmult_retrain::{ApproxConv2d, GradientLut, GradientMode, QuantConfig};
use appmult_rng::Rng64;

struct BenchRow {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    identical: bool,
}

impl BenchRow {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms
    }
}

struct ObsRow {
    name: String,
    off_ms: f64,
    on_ms: f64,
}

struct KernelRow {
    op: &'static str,
    threads: usize,
    naive_ms: f64,
    tiled_ms: f64,
    identical: bool,
    macs: usize,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.naive_ms / self.tiled_ms
    }

    /// Giga-MACs per second at the given wall time.
    fn gmacs(&self, ms: f64) -> f64 {
        self.macs as f64 / ms / 1e6
    }
}

impl ObsRow {
    /// Observability cost in percent (negative values are timing noise).
    fn overhead_pct(&self) -> f64 {
        (self.on_ms - self.off_ms) / self.off_ms * 100.0
    }
}

/// Best-of-`reps` wall-clock milliseconds of `f`.
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn bits_of(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn random_tensor(shape: &[usize], seed: u64) -> Tensor {
    let len = shape.iter().product();
    let mut rng = Rng64::seed_from_u64(seed);
    let data = (0..len).map(|_| rng.uniform_f32(-1.5, 1.5)).collect();
    Tensor::from_vec(data, shape)
}

fn main() {
    let args = Args::from_env();
    let threads = args.get_or("threads", Pool::global().threads().max(4));
    let reps = args.get_or("reps", 5usize);
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!("par_scale: {threads} threads vs serial, best of {reps} (host parallelism {host})");

    let lut = Arc::new(TruncatedMultiplier::new(8, 6).to_lut());
    let mode = GradientMode::difference_based(8);
    let grads = Arc::new(GradientLut::build_with_pool(
        &lut,
        mode.clone(),
        Pool::serial(),
    ));
    let make_conv = || {
        ApproxConv2d::new(
            8,
            16,
            3,
            1,
            1,
            7,
            lut.clone(),
            grads.clone(),
            QuantConfig::default(),
        )
    };
    let input = random_tensor(&[4, 8, 12, 12], 0xC0FFEE);
    let grad_out = random_tensor(&[4, 16, 12, 12], 0xF00D);
    let mut rows = Vec::new();

    // Conv forward/backward go through Pool::global() inside the layer, so
    // the serial/parallel toggle is the global thread override.
    {
        set_global_threads(1);
        let mut conv = make_conv();
        let serial_out = conv.forward(&input, true);
        let mut conv_s = make_conv();
        let serial_ms = best_ms(reps, || {
            let _ = conv_s.forward(&input, true);
        });

        set_global_threads(threads);
        let mut conv = make_conv();
        let parallel_out = conv.forward(&input, true);
        let mut conv_p = make_conv();
        let parallel_ms = best_ms(reps, || {
            let _ = conv_p.forward(&input, true);
        });
        rows.push(BenchRow {
            name: "conv_forward",
            serial_ms,
            parallel_ms,
            identical: bits_of(&serial_out) == bits_of(&parallel_out),
        });
    }
    {
        set_global_threads(1);
        let mut conv = make_conv();
        let _ = conv.forward(&input, true);
        let serial_dx = conv.backward(&grad_out);
        let serial_ms = best_ms(reps, || {
            let _ = conv.backward(&grad_out);
        });

        set_global_threads(threads);
        let mut conv = make_conv();
        let _ = conv.forward(&input, true);
        let parallel_dx = conv.backward(&grad_out);
        let parallel_ms = best_ms(reps, || {
            let _ = conv.backward(&grad_out);
        });
        rows.push(BenchRow {
            name: "conv_backward",
            serial_ms,
            parallel_ms,
            identical: bits_of(&serial_dx) == bits_of(&parallel_dx),
        });
    }
    // Small-shape sweep: a single-sample conv whose GEMMs sit far below
    // the pool's work-size floor, so the "parallel" path must degrade to
    // the serial one instead of paying fork/join overhead on microsecond
    // kernels. `--assert-small-shape` gates on it (the `serve-smoke` CI
    // job uses this): parallel must not be slower than serial beyond
    // timing noise.
    {
        let small_input = random_tensor(&[1, 8, 4, 4], 0x5A11);
        let small_reps = reps.max(25);

        set_global_threads(1);
        let mut conv = make_conv();
        let serial_out = conv.forward(&small_input, true);
        let serial_ms = best_ms(small_reps, || {
            let _ = conv.forward(&small_input, true);
        });

        set_global_threads(threads);
        let mut conv = make_conv();
        let parallel_out = conv.forward(&small_input, true);
        let parallel_ms = best_ms(small_reps, || {
            let _ = conv.forward(&small_input, true);
        });
        rows.push(BenchRow {
            name: "conv_forward_small",
            serial_ms,
            parallel_ms,
            identical: bits_of(&serial_out) == bits_of(&parallel_out),
        });
    }
    set_global_threads(0); // drop the override for anything downstream

    // LUT builds take the pool explicitly.
    {
        let serial = GradientLut::build_with_pool(&lut, mode.clone(), Pool::serial());
        let parallel = GradientLut::build_with_pool(&lut, mode.clone(), Pool::new(threads));
        let serial_ms = best_ms(reps, || {
            let _ = GradientLut::build_with_pool(&lut, mode.clone(), Pool::serial());
        });
        let parallel_ms = best_ms(reps, || {
            let _ = GradientLut::build_with_pool(&lut, mode.clone(), Pool::new(threads));
        });
        let identical = (0..1u32 << 16).all(|i| {
            let (w, x) = (i >> 8, i & 0xFF);
            serial.wrt_w(w, x).to_bits() == parallel.wrt_w(w, x).to_bits()
                && serial.wrt_x(w, x).to_bits() == parallel.wrt_x(w, x).to_bits()
        });
        rows.push(BenchRow {
            name: "gradient_lut_build",
            serial_ms,
            parallel_ms,
            identical,
        });
    }
    {
        let mult = MultiplierCircuit::array(8);
        let nl = mult.netlist();
        let serial = ExhaustiveTable::build_in(nl, Pool::serial());
        let parallel = ExhaustiveTable::build_in(nl, Pool::new(threads));
        let serial_ms = best_ms(reps, || {
            let _ = ExhaustiveTable::build_in(nl, Pool::serial());
        });
        let parallel_ms = best_ms(reps, || {
            let _ = ExhaustiveTable::build_in(nl, Pool::new(threads));
        });
        rows.push(BenchRow {
            name: "exhaustive_table",
            serial_ms,
            parallel_ms,
            identical: serial == parallel,
        });
    }

    // Observability overhead: the same conv kernels with the default null
    // sink vs a recording sink installed process-wide, at one thread and at
    // the benchmark thread count. Off/on timings are interleaved rep by rep
    // (best-of per mode) so scheduler and thermal drift hit both modes
    // equally. The floor is generous because the CI gate rides on the min:
    // on a busy single-core runner a 15-rep min can still catch a
    // descheduling spike on one side only.
    let obs_reps = reps.max(25);
    let mut obs_rows = Vec::new();
    for (label, t) in [("serial", 1usize), ("parallel", threads)] {
        set_global_threads(t);
        let mut conv = make_conv();
        let _ = conv.forward(&input, true); // warm caches + observer
        let recording = appmult_obs::ObsSink::recording();

        let (mut fwd_off, mut fwd_on) = (f64::INFINITY, f64::INFINITY);
        let (mut bwd_off, mut bwd_on) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..obs_reps {
            appmult_obs::set_global(&appmult_obs::ObsSink::null());
            fwd_off = fwd_off.min(best_ms(1, || {
                let _ = conv.forward(&input, true);
            }));
            bwd_off = bwd_off.min(best_ms(1, || {
                let _ = conv.backward(&grad_out);
            }));
            appmult_obs::set_global(&recording);
            fwd_on = fwd_on.min(best_ms(1, || {
                let _ = conv.forward(&input, true);
            }));
            bwd_on = bwd_on.min(best_ms(1, || {
                let _ = conv.backward(&grad_out);
            }));
        }
        appmult_obs::set_global(&appmult_obs::ObsSink::null());

        obs_rows.push(ObsRow {
            name: format!("conv_forward_{label}"),
            off_ms: fwd_off,
            on_ms: fwd_on,
        });
        obs_rows.push(ObsRow {
            name: format!("conv_backward_{label}"),
            off_ms: bwd_off,
            on_ms: bwd_on,
        });
    }
    set_global_threads(0);

    // ---- Kernel engine sweep: naive vs tiled on the LeNet-shaped GEMM ----
    //
    // Raw chunk-level kernels through the worker pool, exactly as the
    // layers drive them, on a LeNet conv2-shaped case (J = 16 output
    // channels, K = 150 = 6x5x5 patch, M = 512 batch rows). Naive and
    // tiled reps are interleaved so scheduler noise hits both kernels
    // equally, and bit-identity is asserted on the outputs of the same
    // run. Backward buffers are re-zeroed inside the timed region (the
    // kernels accumulate), which costs both kernels the same memset.
    let kshape = GemmShape {
        j: 16,
        k: 150,
        bits: lut.bits(),
    };
    let km = 512usize;
    let (kj, kk) = (kshape.j, kshape.k);
    let kmacs = km * kj * kk;
    let mut krng = Rng64::seed_from_u64(0x7E57);
    let codes = 1u64 << kshape.bits;
    let kwq: Vec<u16> = (0..kj * kk).map(|_| krng.below(codes) as u16).collect();
    let kxq: Vec<u16> = (0..km * kk).map(|_| krng.below(codes) as u16).collect();
    let kg: Vec<f32> = (0..km * kj).map(|_| krng.uniform_f32(-1.0, 1.0)).collect();
    let ktable = lut.entries();
    let kgw = grads.wrt_w_table().as_slice();
    let kgx = grads.wrt_x_table().as_slice();
    let tiled = Kernel::tiled_default();
    let kreps = reps.max(9);
    let mut kernel_rows = Vec::new();
    for t in [1usize, 8] {
        let pool = Pool::new(t);
        let time_fwd = |kernel: Kernel, acc: &mut Vec<i64>| {
            best_ms(kreps, || {
                pool.run_rows(acc, kj, |mi0, chunk| {
                    let rows = chunk.len() / kj;
                    forward_acc(
                        kernel,
                        kshape,
                        ktable,
                        &kwq,
                        &kxq[mi0 * kk..(mi0 + rows) * kk],
                        chunk,
                    );
                });
            })
        };
        let time_dx = |kernel: Kernel, dx: &mut Vec<f32>| {
            best_ms(kreps, || {
                dx.fill(0.0);
                pool.run_rows(dx, kk, |mi0, chunk| {
                    let rows = chunk.len() / kk;
                    backward_dx(
                        kernel,
                        kshape,
                        kgx,
                        &kwq,
                        &kxq[mi0 * kk..(mi0 + rows) * kk],
                        &kg[mi0 * kj..(mi0 + rows) * kj],
                        0.37,
                        3.0,
                        chunk,
                    );
                });
            })
        };
        let time_dw = |kernel: Kernel, dw: &mut Vec<f32>| {
            best_ms(kreps, || {
                dw.fill(0.0);
                pool.run_rows(dw, kk, |ji0, chunk| {
                    let rows = chunk.len() / kk;
                    backward_dw(
                        kernel,
                        kshape,
                        kgw,
                        &kwq[ji0 * kk..(ji0 + rows) * kk],
                        ji0,
                        &kxq,
                        &kg,
                        0.59,
                        2.0,
                        chunk,
                    );
                });
            })
        };

        // Interleave: one naive best-of rep block, one tiled, alternating
        // per op. best_ms takes the min, so alternating whole blocks at
        // kreps >= 9 keeps both kernels exposed to the same noise window.
        let (mut acc_n, mut acc_t) = (vec![0i64; km * kj], vec![0i64; km * kj]);
        let (mut fwd_n, mut fwd_t) = (f64::INFINITY, f64::INFINITY);
        let (mut dx_n, mut dx_t) = (vec![0.0f32; km * kk], vec![0.0f32; km * kk]);
        let (mut dxms_n, mut dxms_t) = (f64::INFINITY, f64::INFINITY);
        let (mut dw_n, mut dw_t) = (vec![0.0f32; kj * kk], vec![0.0f32; kj * kk]);
        let (mut dwms_n, mut dwms_t) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            fwd_n = fwd_n.min(time_fwd(Kernel::Naive, &mut acc_n));
            fwd_t = fwd_t.min(time_fwd(tiled, &mut acc_t));
            dxms_n = dxms_n.min(time_dx(Kernel::Naive, &mut dx_n));
            dxms_t = dxms_t.min(time_dx(tiled, &mut dx_t));
            dwms_n = dwms_n.min(time_dw(Kernel::Naive, &mut dw_n));
            dwms_t = dwms_t.min(time_dw(tiled, &mut dw_t));
        }
        let f32_bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        kernel_rows.push(KernelRow {
            op: "forward",
            threads: t,
            naive_ms: fwd_n,
            tiled_ms: fwd_t,
            identical: acc_n == acc_t,
            macs: kmacs,
        });
        kernel_rows.push(KernelRow {
            op: "backward_dx",
            threads: t,
            naive_ms: dxms_n,
            tiled_ms: dxms_t,
            identical: f32_bits(&dx_n) == f32_bits(&dx_t),
            macs: kmacs,
        });
        kernel_rows.push(KernelRow {
            op: "backward_dw",
            threads: t,
            naive_ms: dwms_n,
            tiled_ms: dwms_t,
            identical: f32_bits(&dw_n) == f32_bits(&dw_t),
            macs: kmacs,
        });
    }

    // The null sink itself, measured directly: the disabled fast path is a
    // relaxed atomic load plus an `Option` branch per instrumentation
    // point. Projected against the serial forward kernel this must stay
    // far under 2%; it is asserted unconditionally since the measurement
    // is deterministic to first order.
    let null_ops = 1_000_000u64;
    let null_ms = best_ms(reps, || {
        for _ in 0..null_ops {
            let obs = appmult_obs::global();
            obs.counter_add("x", 1);
            let _g = obs.span("y");
        }
    });
    let ns_per_op = null_ms * 1e6 / null_ops as f64;
    // Instrumentation points per conv forward: the layer span, the GEMM
    // span, the lookup counter, and one pool span per worker.
    let ops_per_forward = (3 + threads) as f64;
    let fwd_serial_ms = obs_rows
        .iter()
        .find(|r| r.name == "conv_forward_serial")
        .map_or(1.0, |r| r.off_ms);
    let null_pct = ops_per_forward * ns_per_op / (fwd_serial_ms * 1e6) * 100.0;
    println!(
        "null sink: {ns_per_op:.1} ns per disabled instrumentation point \
         ({null_pct:.4}% of conv_forward)"
    );
    assert!(
        null_pct < 2.0,
        "null-sink overhead {null_pct:.4}% must be far below 2%"
    );

    let table = markdown_table(
        &[
            "kernel",
            "serial ms",
            "parallel ms",
            "speedup",
            "bit-identical",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{:.3}", r.serial_ms),
                    format!("{:.3}", r.parallel_ms),
                    format!("{:.2}x", r.speedup()),
                    r.identical.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\n{table}");

    let obs_table = markdown_table(
        &["kernel", "obs off ms", "obs on ms", "overhead %"],
        &obs_rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.3}", r.off_ms),
                    format!("{:.3}", r.on_ms),
                    format!("{:+.2}", r.overhead_pct()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{obs_table}");

    let kernel_table = markdown_table(
        &[
            "op",
            "threads",
            "naive ms",
            "tiled ms",
            "speedup",
            "naive GMAC/s",
            "tiled GMAC/s",
            "bit-identical",
        ],
        &kernel_rows
            .iter()
            .map(|r| {
                vec![
                    r.op.to_string(),
                    r.threads.to_string(),
                    format!("{:.3}", r.naive_ms),
                    format!("{:.3}", r.tiled_ms),
                    format!("{:.2}x", r.speedup()),
                    format!("{:.3}", r.gmacs(r.naive_ms)),
                    format!("{:.3}", r.gmacs(r.tiled_ms)),
                    r.identical.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "kernel sweep ({} vs naive, M=512 J=16 K=150):",
        tiled.label()
    );
    println!("{kernel_table}");

    let kernel_json: Vec<String> = kernel_rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"op\": \"{}\", \"threads\": {}, \"naive_ms\": {:.4}, ",
                    "\"tiled_ms\": {:.4}, \"speedup\": {:.4}, \"naive_gmacs\": {:.4}, ",
                    "\"tiled_gmacs\": {:.4}, \"identical\": {}}}"
                ),
                r.op,
                r.threads,
                r.naive_ms,
                r.tiled_ms,
                r.speedup(),
                r.gmacs(r.naive_ms),
                r.gmacs(r.tiled_ms),
                r.identical
            )
        })
        .collect();
    let kernels_json = format!(
        "{{\n  \"shape\": {{\"m\": {km}, \"j\": {kj}, \"k\": {kk}, \"bits\": {}}},\n  \
         \"tiled\": \"{}\",\n  \"reps\": {kreps},\n  \"rows\": [\n{}\n  ]\n}}\n",
        kshape.bits,
        tiled.label(),
        kernel_json.join(",\n")
    );
    let kpath = write_results("BENCH_kernels.json", &kernels_json);
    println!("wrote {}", kpath.display());

    let benches: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"name\": \"{}\", \"serial_ms\": {:.4}, ",
                    "\"parallel_ms\": {:.4}, \"speedup\": {:.4}, \"identical\": {}}}"
                ),
                r.name,
                r.serial_ms,
                r.parallel_ms,
                r.speedup(),
                r.identical
            )
        })
        .collect();
    let obs_json: Vec<String> = obs_rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"name\": \"{}\", \"off_ms\": {:.4}, ",
                    "\"on_ms\": {:.4}, \"overhead_pct\": {:.4}}}"
                ),
                r.name,
                r.off_ms,
                r.on_ms,
                r.overhead_pct()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"host_parallelism\": {host},\n  \
         \"reps\": {reps},\n  \"benches\": [\n{}\n  ],\n  \"obs\": [\n{}\n  ],\n  \
         \"null_sink\": {{\"ns_per_op\": {ns_per_op:.4}, \
         \"pct_of_conv_forward\": {null_pct:.6}}}\n}}\n",
        benches.join(",\n"),
        obs_json.join(",\n")
    );
    let path = write_results("BENCH_par.json", &json);
    println!("wrote {}", path.display());

    assert!(
        rows.iter().all(|r| r.identical),
        "parallel kernels must be bit-identical"
    );
    assert!(
        kernel_rows.iter().all(|r| r.identical),
        "tiled kernels must be bit-identical to naive"
    );
    if let Some(min_speedup) = args
        .value("assert-kernel-speedup")
        .and_then(|v| v.parse::<f64>().ok())
    {
        for r in kernel_rows.iter().filter(|r| r.op == "forward") {
            assert!(
                r.speedup() >= min_speedup,
                "forward kernel speedup {:.2}x at {} threads below the {min_speedup}x floor",
                r.speedup(),
                r.threads
            );
        }
        println!("forward kernel speedup meets the {min_speedup}x floor");
    }
    if args.flag("assert-small-shape") {
        let small = rows
            .iter()
            .find(|r| r.name == "conv_forward_small")
            .expect("small-shape row present");
        // With the work-size floor both paths run serially, so the only
        // allowed gap is best-of-N timing noise.
        assert!(
            small.speedup() >= 0.85,
            "small-shape parallel path {:.3} ms is slower than serial {:.3} ms \
             ({:.2}x): the work-size floor is not engaging",
            small.parallel_ms,
            small.serial_ms,
            small.speedup()
        );
        println!(
            "small-shape floor holds: {:.2}x (parallel {:.3} ms vs serial {:.3} ms)",
            small.speedup(),
            small.parallel_ms,
            small.serial_ms
        );
    }
    if let Some(limit) = args
        .value("assert-overhead")
        .and_then(|v| v.parse::<f64>().ok())
    {
        for r in &obs_rows {
            assert!(
                r.overhead_pct() < limit,
                "{}: observability overhead {:.2}% exceeds the {limit}% budget",
                r.name,
                r.overhead_pct()
            );
        }
        println!("observability overhead within the {limit}% budget");
    }
}
