//! Reproduces **Table II**: retraining accuracy with the STE-based gradient
//! vs the difference-based gradient, for every 7- and 8-bit AppMult of
//! Table I, on the CIFAR-10-like task.
//!
//! Usage:
//!
//! ```text
//! cargo run -p appmult-bench --release --bin table2 -- --model vgg
//! cargo run -p appmult-bench --release --bin table2 -- --model resnet
//! cargo run -p appmult-bench --release --bin table2 -- --model vgg --quick
//! cargo run -p appmult-bench --release --bin table2 -- --model resnet --full
//! ```
//!
//! Defaults run the CPU-scale configuration (scaled model widths, 16x16
//! synthetic data, short schedule); `--full` switches to paper-scale
//! settings. Results are printed as a markdown table and written to
//! `results/table2_<model>.csv`.

use std::sync::Arc;

use appmult_bench::{
    compare_entry, markdown_table, pretrain_float, select_hws_by_proxy, write_results, Args,
    ComparisonRow, ModelKind, Scale, Workload,
};
use appmult_models::{ResNetDepth, VggDepth};
use appmult_mult::zoo;
use appmult_mult::Multiplier;

fn main() {
    let args = Args::from_env();
    let model_name = args.value("model").unwrap_or("vgg").to_string();
    let quick = args.flag("quick");
    let full = args.flag("full");

    let (kind, label) = match model_name.as_str() {
        "vgg" => (
            ModelKind::Vgg(if full { VggDepth::V19 } else { VggDepth::Small }),
            "VGG",
        ),
        "resnet" => (
            ModelKind::ResNet(if full {
                ResNetDepth::R18
            } else {
                ResNetDepth::R10
            }),
            "ResNet",
        ),
        other => {
            eprintln!("unknown --model {other}; use vgg or resnet");
            std::process::exit(2);
        }
    };
    let mut scale = if full {
        Scale::paper_cifar10()
    } else {
        Scale::cpu_cifar10()
    };
    if !full && model_name == "resnet" {
        // The residual stages are ~4x the MACs of the small VGG at equal
        // width; thin the CPU-scale variant so the 17-config sweep stays
        // tractable on one core.
        scale.model.width_div = 8;
        scale.retrain_epochs = 8;
    }
    if let Some(e) = args.value("epochs") {
        scale.retrain_epochs = e.parse().expect("--epochs must be an integer");
    }

    let names: Vec<&str> = if quick {
        vec!["mul8u_rm8", "mul7u_rm6", "mul7u_06Q", "mul8u_1DMU"]
    } else {
        zoo::names()
            .iter()
            .copied()
            .filter(|n| !n.starts_with("mul6") && !n.ends_with("_acc"))
            .collect()
    };

    // HWS per multiplier: Table I's published windows by default;
    // --select-hws re-derives them with the paper's Sec. V-A LeNet proxy
    // (see also the standalone hws_select binary).
    let paper_hws = !args.flag("select-hws");

    eprintln!("[table2] generating workload + pretraining float {label} model...");
    let workload = Workload::generate(&scale);
    let start = std::time::Instant::now();
    let (mut pretrained, float_top1) = pretrain_float(kind, &scale, &workload);
    eprintln!(
        "[table2] float accuracy {:.2}% ({:.1?})",
        float_top1 * 100.0,
        start.elapsed()
    );
    let mut pretrained_lenet = if paper_hws {
        None
    } else {
        Some(pretrain_float(ModelKind::LeNet, &scale, &workload).0)
    };

    // Reference accuracies: exact multiplier + quantization-aware training.
    let mut reference = Vec::new();
    for acc_name in ["mul8u_acc", "mul7u_acc"] {
        let entry = zoo::entry(acc_name).expect("known");
        let t = std::time::Instant::now();
        let row = compare_entry(kind, &scale, &workload, &mut pretrained, &entry, 1);
        eprintln!(
            "[table2] {acc_name}: reference accuracy {:.2}% ({:.1?})",
            row.ste_pct,
            t.elapsed()
        );
        reference.push((acc_name, row));
    }

    let mut rows: Vec<ComparisonRow> = Vec::new();
    for name in &names {
        let entry = zoo::entry(name).expect("known Table I name");
        let t = std::time::Instant::now();
        let hws = match &mut pretrained_lenet {
            Some(lenet) => {
                let lut = Arc::new(entry.multiplier.to_lut());
                match select_hws_by_proxy(&lut, &scale, &workload, lenet) {
                    Ok(sel) => {
                        eprintln!(
                            "[table2] {name}: proxy-selected HWS = {} (paper used {})",
                            sel.best,
                            entry.recommended_hws()
                        );
                        sel.best
                    }
                    Err(e) => {
                        eprintln!(
                            "[table2] {name}: HWS sweep failed ({e}); falling back to paper HWS {}",
                            entry.recommended_hws()
                        );
                        entry.recommended_hws()
                    }
                }
            }
            None => entry.recommended_hws(),
        };
        let row = compare_entry(kind, &scale, &workload, &mut pretrained, &entry, hws);
        eprintln!(
            "[table2] {name}: init {:.2}% | STE {:.2}% | ours {:.2}% | improve {:+.2} ({:.1?})",
            row.initial_pct,
            row.ste_pct,
            row.ours_pct,
            row.improvement(),
            t.elapsed()
        );
        rows.push(row);
    }

    // Render the table.
    let mut md_rows = Vec::new();
    for (name, row) in &reference {
        md_rows.push(vec![
            format!("{name} (reference)"),
            "-".into(),
            format!("{:.2}", row.ste_pct),
            format!("{:.2}", row.ours_pct),
            "-".into(),
            format!("{:.2}", row.norm_power),
            format!("{:.2}", row.norm_delay),
            format!("{:.2}", row.nmed_pct),
        ]);
    }
    for r in &rows {
        md_rows.push(vec![
            r.name.clone(),
            format!("{:.2}", r.initial_pct),
            format!("{:.2}", r.ste_pct),
            format!("{:.2}", r.ours_pct),
            format!("{:+.2}", r.improvement()),
            format!("{:.2}", r.norm_power),
            format!("{:.2}", r.norm_delay),
            format!("{:.2}", r.nmed_pct),
        ]);
    }
    let mean_init = rows.iter().map(|r| r.initial_pct).sum::<f64>() / rows.len() as f64;
    let mean_ste = rows.iter().map(|r| r.ste_pct).sum::<f64>() / rows.len() as f64;
    let mean_ours = rows.iter().map(|r| r.ours_pct).sum::<f64>() / rows.len() as f64;
    md_rows.push(vec![
        format!("**{label} mean**"),
        format!("{mean_init:.2}"),
        format!("{mean_ste:.2}"),
        format!("{mean_ours:.2}"),
        format!("{:+.2}", mean_ours - mean_ste),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    let table = markdown_table(
        &[
            "Multiplier",
            "Initial acc. %",
            "STE %",
            "Ours %",
            "Improve",
            "Norm. power",
            "Norm. delay",
            "NMED %",
        ],
        &md_rows,
    );
    println!(
        "\n## Table II ({label}, {} mode)\n",
        if full { "paper-scale" } else { "CPU-scale" }
    );
    println!("{table}");

    // CSV for fig5.
    let mut csv = String::from("name,initial,ste,ours,norm_power,norm_delay,nmed,bits\n");
    for r in &rows {
        let bits = if r.name.starts_with("mul8") { 8 } else { 7 };
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{}\n",
            r.name,
            r.initial_pct,
            r.ste_pct,
            r.ours_pct,
            r.norm_power,
            r.norm_delay,
            r.nmed_pct,
            bits
        ));
    }
    for (name, row) in &reference {
        let bits = if name.starts_with("mul8") { 8 } else { 7 };
        csv.push_str(&format!(
            "{},-,{:.4},{:.4},{:.4},{:.4},0,{}\n",
            name, row.ste_pct, row.ours_pct, row.norm_power, row.norm_delay, bits
        ));
    }
    let path = write_results(&format!("table2_{model_name}.csv"), &csv);
    eprintln!("[table2] wrote {}", path.display());
}
