//! Zero-dependency observability for the retraining workspace.
//!
//! A retraining run that diverges, or a parallel kernel that underperforms,
//! used to be invisible beyond ad-hoc `println!`s: the loop produced a CSV
//! at the end and nothing in between. This crate makes per-layer timing,
//! gradient statistics, and kernel counters first-class signals:
//!
//! * **Scoped spans** — [`ObsSink::span`] returns a guard that measures
//!   wall-clock time with [`std::time::Instant`] and records it into a
//!   log2 latency histogram on drop. Spans nest: a span opened while
//!   another is live on the same thread records under the joined path
//!   (`"epoch/batch/linear.forward"`), and *root* spans additionally
//!   attribute busy time to the current thread, so `appmult-pool` workers
//!   show up individually in the report.
//! * **Metrics registry** — monotonic counters ([`ObsSink::counter_add`]),
//!   gauges ([`ObsSink::gauge_set`]), and fixed-bucket log2 histograms
//!   ([`ObsSink::observe`]) keyed by name.
//! * **Structured events** — [`ObsSink::event`] appends a typed record
//!   (epoch loss, learning rate, rollbacks, ...) with a sequence number
//!   and a timestamp relative to sink creation. Events render as JSONL
//!   ([`ObsSink::events_jsonl`]) and are embedded in the full report.
//!
//! Everything hangs off an [`ObsSink`] handle. The default sink is a
//! no-op **null sink**: every method is a single `Option` check, no
//! allocation, no locking, no clock reads — cheap enough to leave in the
//! hot kernels permanently (the `par_scale` benchmark asserts the
//! overhead). A recording sink ([`ObsSink::recording`]) accumulates into
//! an internal registry and serializes to the hand-rolled
//! `appmult-obs/v1` JSON schema ([`ObsSink::to_json`]) plus a plain-text
//! summary table ([`ObsSink::summary`]).
//!
//! Hot paths that have no configuration handle (the LUT-GEMM kernels, the
//! pool) read the process-wide sink via [`global`]; it defaults to the
//! null sink and is installed by [`set_global`]. The fast path is one
//! relaxed atomic load.
//!
//! # Example
//!
//! ```
//! let obs = appmult_obs::ObsSink::recording();
//! {
//!     let _span = obs.span("demo.work");
//!     obs.counter_add("demo.items", 3);
//! }
//! obs.event("epoch", &[("epoch", 1u64.into()), ("loss", 0.25f64.into())]);
//! let json = obs.to_json();
//! assert!(json.contains("\"schema\": \"appmult-obs/v1\""));
//! assert!(json.contains("\"demo.items\": 3"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Schema identifier written into every report.
pub const SCHEMA: &str = "appmult-obs/v1";

/// A typed field value attached to an [`event`](ObsSink::event).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values serialize as `null`).
    F64(f64),
    /// String (escaped on serialization).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Self::F64(f64::from(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl Value {
    fn render(&self, out: &mut String) {
        match self {
            Self::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Self::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Self::F64(v) => render_f64(out, *v),
            Self::Str(v) => render_str(out, v),
            Self::Bool(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }
}

/// Writes `v` as JSON, mapping non-finite floats to `null` (JSON has no
/// NaN/Inf literals and a poisoned run must still produce a parseable
/// report).
fn render_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Writes `v` as a JSON string with the mandatory escapes.
fn render_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Number of fixed log2 buckets per histogram: exponents `-32..=31`.
pub const HIST_BUCKETS: usize = 64;
const MIN_EXP: i32 = -32;
const MAX_EXP: i32 = 31;

/// Bucket index (the floor of `log2(v)`, clamped) for a histogram sample.
/// Non-positive and subnormal-small values land in the lowest bucket.
fn log2_bucket(v: f64) -> i32 {
    if v > 0.0 {
        (v.log2().floor() as i32).clamp(MIN_EXP, MAX_EXP)
    } else {
        MIN_EXP
    }
}

/// One fixed-bucket log2 histogram: 64 buckets covering `2^-32 ..= 2^32`,
/// stored sparsely, plus count/sum/min/max for exact means.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest sample (`f64::NEG_INFINITY` when empty).
    pub max: f64,
    /// Occupied buckets: `floor(log2(sample))` → sample count.
    pub buckets: BTreeMap<i32, u64>,
}

impl Histogram {
    fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        *self.buckets.entry(log2_bucket(v)).or_insert(0) += 1;
    }

    /// Mean of the recorded samples (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One structured event: a kind plus typed fields, stamped with a
/// sequence number and microseconds since the sink was created.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// 0-based position in the event stream.
    pub seq: u64,
    /// Microseconds since the recording sink was created.
    pub t_us: u64,
    /// Event kind, e.g. `"epoch"` or `"rollback"`.
    pub kind: String,
    /// Typed payload fields in insertion order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Renders the event as a single-line JSON object (one JSONL record).
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seq\": {}, \"t_us\": {}, \"kind\": ",
            self.seq, self.t_us
        );
        render_str(&mut out, &self.kind);
        for (k, v) in &self.fields {
            out.push_str(", ");
            render_str(&mut out, k);
            out.push_str(": ");
            v.render(&mut out);
        }
        out.push('}');
        out
    }
}

/// Mutable registry state behind the recorder's mutex.
#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    /// Busy nanoseconds attributed per thread tag by root spans.
    threads: BTreeMap<String, u64>,
    events: Vec<Event>,
}

/// The shared recording backend of a non-null [`ObsSink`].
#[derive(Debug)]
struct Recorder {
    start: Instant,
    inner: Mutex<Inner>,
}

thread_local! {
    /// Per-thread stack of live span names; joined into hierarchical paths.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Tag identifying the current thread in the report: its name when set
/// (`main`, test names), else the numeric `ThreadId` debug form.
fn thread_tag() -> String {
    let current = std::thread::current();
    match current.name() {
        Some(name) => name.to_string(),
        None => format!("{:?}", current.id()),
    }
}

/// A cheaply clonable handle to either the null sink or a shared recorder.
///
/// All methods are safe to call from any thread; the null sink turns every
/// one of them into a single branch.
#[derive(Debug, Clone, Default)]
pub struct ObsSink {
    rec: Option<Arc<Recorder>>,
}

impl ObsSink {
    /// The no-op sink: records nothing, costs one branch per call.
    pub fn null() -> Self {
        Self { rec: None }
    }

    /// A fresh recording sink with an empty registry.
    pub fn recording() -> Self {
        Self {
            rec: Some(Arc::new(Recorder {
                start: Instant::now(),
                inner: Mutex::new(Inner::default()),
            })),
        }
    }

    /// Whether this sink records anything. Use to gate instrumentation
    /// whose *inputs* are expensive to compute (e.g. a full gradient norm).
    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Adds `delta` to the monotonic counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(rec) = &self.rec {
            let mut inner = rec.inner.lock().expect("obs registry poisoned");
            *inner.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(rec) = &self.rec {
            let mut inner = rec.inner.lock().expect("obs registry poisoned");
            inner.gauges.insert(name.to_string(), value);
        }
    }

    /// Records `value` into the log2 histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(rec) = &self.rec {
            let mut inner = rec.inner.lock().expect("obs registry poisoned");
            inner
                .hists
                .entry(name.to_string())
                .or_default()
                .record(value);
        }
    }

    /// Appends a structured event of `kind` with the given fields.
    pub fn event(&self, kind: &str, fields: &[(&str, Value)]) {
        if let Some(rec) = &self.rec {
            let t_us = rec.start.elapsed().as_micros() as u64;
            let mut inner = rec.inner.lock().expect("obs registry poisoned");
            let seq = inner.events.len() as u64;
            inner.events.push(Event {
                seq,
                t_us,
                kind: kind.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Opens a scoped span named `name`. The returned guard measures
    /// wall-clock time until drop and records it (in microseconds) into
    /// the histogram `span.<path>`, where `<path>` joins all live span
    /// names on this thread with `/`. Root spans (no enclosing span on
    /// this thread) also attribute their duration to the current thread's
    /// busy time. The null sink returns an inert guard without touching
    /// the clock.
    #[must_use = "the span measures until the guard is dropped"]
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(rec) = &self.rec else {
            return SpanGuard { live: None };
        };
        let (path, is_root) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let is_root = stack.is_empty();
            stack.push(name.to_string());
            (stack.join("/"), is_root)
        });
        SpanGuard {
            live: Some(LiveSpan {
                rec: Arc::clone(rec),
                path,
                is_root,
                start: Instant::now(),
            }),
        }
    }

    /// Adds `nanos` of busy time to the current thread's attribution
    /// directly (used where a span would be too coarse).
    pub fn thread_busy_add(&self, nanos: u64) {
        if let Some(rec) = &self.rec {
            let tag = thread_tag();
            let mut inner = rec.inner.lock().expect("obs registry poisoned");
            *inner.threads.entry(tag).or_insert(0) += nanos;
        }
    }

    /// Current value of counter `name` (0 when absent or on the null sink).
    pub fn counter(&self, name: &str) -> u64 {
        self.rec.as_ref().map_or(0, |rec| {
            let inner = rec.inner.lock().expect("obs registry poisoned");
            inner.counters.get(name).copied().unwrap_or(0)
        })
    }

    /// Snapshot of histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.rec.as_ref().and_then(|rec| {
            let inner = rec.inner.lock().expect("obs registry poisoned");
            inner.hists.get(name).cloned()
        })
    }

    /// Snapshot of the recorded events.
    pub fn events(&self) -> Vec<Event> {
        self.rec.as_ref().map_or_else(Vec::new, |rec| {
            rec.inner
                .lock()
                .expect("obs registry poisoned")
                .events
                .clone()
        })
    }

    /// All recorded events as JSONL: one JSON object per line.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.events() {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Serializes the full registry as an `appmult-obs/v1` report: pretty,
    /// one field per line (the workspace's line-oriented-parse convention,
    /// like `LINT.json`), with events embedded as single-line objects.
    pub fn to_json(&self) -> String {
        self.to_json_with_config(&[])
    }

    /// Like [`to_json`](Self::to_json), but embeds a `"config"` object
    /// right after the schema header describing the run that produced the
    /// report (threads, kernel, batch policy, ...). An empty slice omits
    /// the object entirely, keeping the schema additive.
    pub fn to_json_with_config(&self, config: &[(&str, Value)]) -> String {
        let Some(rec) = &self.rec else {
            return format!("{{\n  \"schema\": \"{SCHEMA}\",\n  \"recording\": false\n}}\n");
        };
        let inner = rec.inner.lock().expect("obs registry poisoned");
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        if !config.is_empty() {
            out.push_str("  \"config\": {");
            for (i, (key, value)) in config.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str("    ");
                render_str(&mut out, key);
                out.push_str(": ");
                value.render(&mut out);
            }
            out.push_str("\n  },\n");
        }
        out.push_str("  \"recording\": true,\n");

        out.push_str("  \"counters\": {");
        for (i, (name, value)) in inner.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            render_str(&mut out, name);
            let _ = write!(out, ": {value}");
        }
        out.push_str("\n  },\n");

        out.push_str("  \"gauges\": {");
        for (i, (name, value)) in inner.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            render_str(&mut out, name);
            out.push_str(": ");
            render_f64(&mut out, *value);
        }
        out.push_str("\n  },\n");

        out.push_str("  \"histograms\": [");
        for (i, (name, hist)) in inner.hists.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n      \"name\": ");
            render_str(&mut out, name);
            out.push_str(",\n");
            let _ = writeln!(out, "      \"count\": {},", hist.count);
            out.push_str("      \"sum\": ");
            render_f64(&mut out, hist.sum);
            out.push_str(",\n      \"min\": ");
            render_f64(&mut out, if hist.count == 0 { f64::NAN } else { hist.min });
            out.push_str(",\n      \"max\": ");
            render_f64(&mut out, if hist.count == 0 { f64::NAN } else { hist.max });
            out.push_str(",\n      \"buckets\": [");
            for (j, (exp, count)) in hist.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"log2\": {exp}, \"count\": {count}}}");
            }
            out.push_str("]\n    }");
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"threads\": [");
        for (i, (tag, nanos)) in inner.threads.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"thread\": ");
            render_str(&mut out, tag);
            out.push_str(", \"busy_us\": ");
            render_f64(&mut out, *nanos as f64 / 1_000.0);
            out.push('}');
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"events\": [");
        for (i, event) in inner.events.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            out.push_str(&event.to_json_line());
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the registry as a plain-text end-of-run summary table.
    pub fn summary(&self) -> String {
        let Some(rec) = &self.rec else {
            return "observability: disabled (null sink)\n".to_string();
        };
        let inner = rec.inner.lock().expect("obs registry poisoned");
        let mut out = String::new();
        let _ = writeln!(out, "== observability summary ({SCHEMA}) ==");
        if !inner.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &inner.counters {
                let _ = writeln!(out, "  {name:<44} {value}");
            }
        }
        if !inner.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &inner.gauges {
                let _ = writeln!(out, "  {name:<44} {value:.6}");
            }
        }
        if !inner.hists.is_empty() {
            out.push_str("histograms (count / mean / min / max):\n");
            for (name, hist) in &inner.hists {
                let _ = writeln!(
                    out,
                    "  {name:<44} {:>8} {:>12.3} {:>12.3} {:>12.3}",
                    hist.count,
                    hist.mean(),
                    hist.min,
                    hist.max
                );
            }
        }
        if !inner.threads.is_empty() {
            out.push_str("thread busy time:\n");
            for (tag, nanos) in &inner.threads {
                let _ = writeln!(out, "  {tag:<44} {:>12.3} ms", *nanos as f64 / 1e6);
            }
        }
        let _ = writeln!(out, "events: {}", inner.events.len());
        out
    }
}

/// Live half of a [`SpanGuard`] on a recording sink.
#[derive(Debug)]
struct LiveSpan {
    rec: Arc<Recorder>,
    path: String,
    is_root: bool,
    start: Instant,
}

/// RAII guard returned by [`ObsSink::span`]; records on drop.
#[derive(Debug)]
#[must_use = "the span measures until the guard is dropped"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let elapsed = live.start.elapsed();
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let name = format!("span.{}", live.path);
        let tag = if live.is_root {
            Some(thread_tag())
        } else {
            None
        };
        let mut inner = live.rec.inner.lock().expect("obs registry poisoned");
        inner
            .hists
            .entry(name)
            .or_default()
            .record(elapsed.as_secs_f64() * 1e6);
        if let Some(tag) = tag {
            *inner.threads.entry(tag).or_insert(0) += elapsed.as_nanos() as u64;
        }
    }
}

/// Fast-path flag mirroring whether the installed global sink records.
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed global sink (null until [`set_global`]).
static GLOBAL_SINK: RwLock<Option<ObsSink>> = RwLock::new(None);

/// The process-wide sink used by hot paths with no configuration handle
/// (LUT-GEMM kernels, gradient-table builds, the pool). Defaults to the
/// null sink; the disabled fast path is one relaxed atomic load.
pub fn global() -> ObsSink {
    if !GLOBAL_ENABLED.load(Ordering::Relaxed) {
        return ObsSink::null();
    }
    GLOBAL_SINK
        .read()
        .expect("global obs sink poisoned")
        .clone()
        .unwrap_or_default()
}

/// Installs `sink` as the process-wide sink returned by [`global`].
/// Install the null sink to disable again.
pub fn set_global(sink: &ObsSink) {
    let enabled = sink.is_enabled();
    *GLOBAL_SINK.write().expect("global obs sink poisoned") = Some(sink.clone());
    GLOBAL_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Opens a span on the [`global`] sink: `let _g = appmult_obs::span!("gemm");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_records_nothing_and_reports_disabled() {
        let obs = ObsSink::null();
        assert!(!obs.is_enabled());
        obs.counter_add("x", 5);
        obs.observe("h", 1.0);
        obs.event("e", &[("k", 1u64.into())]);
        {
            let _g = obs.span("s");
        }
        assert_eq!(obs.counter("x"), 0);
        assert!(obs.events().is_empty());
        assert!(obs.to_json().contains("\"recording\": false"));
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let obs = ObsSink::recording();
        obs.counter_add("lut.lookups", 10);
        obs.counter_add("lut.lookups", 5);
        obs.gauge_set("lr", 0.1);
        obs.gauge_set("lr", 0.05);
        assert_eq!(obs.counter("lut.lookups"), 15);
        let json = obs.to_json();
        assert!(json.contains("\"lut.lookups\": 15"));
        assert!(json.contains("\"lr\": 0.05"));
    }

    #[test]
    fn config_header_is_embedded_and_additive() {
        let obs = ObsSink::recording();
        obs.counter_add("x", 1);
        let json = obs.to_json_with_config(&[
            ("threads", Value::from(4u64)),
            ("kernel", Value::from("tiled-64x16x64")),
        ]);
        assert!(json.contains("\"config\": {"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"kernel\": \"tiled-64x16x64\""));
        // Without a config the object is omitted entirely (schema stays
        // byte-identical to pre-config reports).
        assert!(!obs.to_json().contains("\"config\""));
        assert!(obs.to_json().contains("\"x\": 1"));
    }

    #[test]
    fn histogram_buckets_follow_log2() {
        assert_eq!(log2_bucket(1.0), 0);
        assert_eq!(log2_bucket(1.5), 0);
        assert_eq!(log2_bucket(2.0), 1);
        assert_eq!(log2_bucket(1023.0), 9);
        assert_eq!(log2_bucket(0.25), -2);
        assert_eq!(log2_bucket(0.0), MIN_EXP);
        assert_eq!(log2_bucket(-3.0), MIN_EXP);
        assert_eq!(log2_bucket(1e300), MAX_EXP);

        let obs = ObsSink::recording();
        for v in [1.0, 1.9, 4.0, 0.3] {
            obs.observe("h", v);
        }
        let h = obs.histogram("h").expect("recorded");
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[&0], 2);
        assert_eq!(h.buckets[&2], 1);
        assert_eq!(h.buckets[&-2], 1);
        assert!((h.mean() - (1.0 + 1.9 + 4.0 + 0.3) / 4.0).abs() < 1e-12);
        assert_eq!(h.min, 0.3);
        assert_eq!(h.max, 4.0);
    }

    #[test]
    fn spans_nest_into_paths_and_attribute_thread_busy_time() {
        let obs = ObsSink::recording();
        {
            let _outer = obs.span("epoch");
            {
                let _inner = obs.span("batch");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let outer = obs.histogram("span.epoch").expect("outer span");
        let inner = obs.histogram("span.epoch/batch").expect("inner span");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(
            outer.sum >= inner.sum,
            "outer {} inner {}",
            outer.sum,
            inner.sum
        );
        // Only the root span contributes busy time, exactly once.
        let json = obs.to_json();
        assert!(json.contains("\"threads\": ["));
        assert_eq!(json.matches("\"busy_us\":").count(), 1);
    }

    #[test]
    fn spans_on_other_threads_tag_separately() {
        let obs = ObsSink::recording();
        {
            let _main = obs.span("main_work");
        }
        let worker = obs.clone();
        std::thread::spawn(move || {
            let _s = worker.span("worker_work");
        })
        .join()
        .expect("worker");
        let json = obs.to_json();
        assert_eq!(json.matches("\"busy_us\":").count(), 2);
        assert_eq!(obs.histogram("span.worker_work").expect("hist").count, 1);
    }

    #[test]
    fn events_carry_typed_fields_in_order() {
        let obs = ObsSink::recording();
        obs.event(
            "epoch",
            &[
                ("epoch", 3u64.into()),
                ("loss", 0.5f64.into()),
                ("note", "ok".into()),
                ("diverged", false.into()),
            ],
        );
        obs.event("rollback", &[("loss", f64::NAN.into())]);
        let jsonl = obs.events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\": 0, "));
        assert!(lines[0].contains("\"kind\": \"epoch\""));
        assert!(
            lines[0].contains("\"epoch\": 3, \"loss\": 0.5, \"note\": \"ok\", \"diverged\": false")
        );
        // Non-finite floats must stay parseable JSON.
        assert!(lines[1].contains("\"loss\": null"));
    }

    #[test]
    fn string_escaping_is_json_safe() {
        let mut out = String::new();
        render_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn global_sink_roundtrip() {
        // Serialized against other tests by the write-install pair.
        let _ = global().is_enabled();
        let obs = ObsSink::recording();
        set_global(&obs);
        global().counter_add("g.counter", 2);
        assert_eq!(obs.counter("g.counter"), 2);
        {
            let _g = span!("g.span");
        }
        assert!(obs.histogram("span.g.span").is_some());
        set_global(&ObsSink::null());
        assert!(!global().is_enabled());
        global().counter_add("g.counter", 2);
        assert_eq!(obs.counter("g.counter"), 2, "detached sink unaffected");
    }

    #[test]
    fn summary_mentions_every_section() {
        let obs = ObsSink::recording();
        obs.counter_add("c", 1);
        obs.gauge_set("g", 2.0);
        obs.observe("h", 3.0);
        obs.event("e", &[]);
        let s = obs.summary();
        for needle in ["counters:", "gauges:", "histograms", "events: 1"] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
