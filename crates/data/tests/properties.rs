//! Randomized property tests for the synthetic dataset generator.
//!
//! Deterministic cases drawn from the in-tree `appmult-rng` stream
//! (proptest is unavailable in the offline build environment).

use appmult_data::{DatasetConfig, SyntheticDataset};
use appmult_rng::Rng64;

/// Generation is deterministic per seed and sensitive to it.
#[test]
fn deterministic_per_seed() {
    let mut rng = Rng64::seed_from_u64(0xE1);
    for _ in 0..6 {
        let seed = rng.below(1000);
        let mut cfg = DatasetConfig::tiny();
        cfg.seed = seed;
        let a = SyntheticDataset::generate(&cfg);
        let b = SyntheticDataset::generate(&cfg);
        let (ba, bb) = (a.train_batches(4), b.train_batches(4));
        assert_eq!(ba.len(), bb.len());
        for ((ta, la), (tb, lb)) in ba.iter().zip(&bb) {
            assert_eq!(ta, tb);
            assert_eq!(la, lb);
        }
    }
}

/// Every label is a valid class index and all classes are represented
/// across the training split.
#[test]
fn labels_are_valid_and_complete() {
    let mut rng = Rng64::seed_from_u64(0xE2);
    for _ in 0..6 {
        let classes = 2 + rng.index(6);
        let per_class = 2 + rng.index(4);
        let cfg = DatasetConfig::small(classes, per_class, 1);
        let data = SyntheticDataset::generate(&cfg);
        let batches = data.train_batches(classes * per_class);
        let mut seen = vec![false; classes];
        for (_, labels) in &batches {
            for &l in labels {
                assert!(l < classes);
                seen[l] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all classes in the train split");
    }
}

/// Batch tensors always match their label counts and config shape.
#[test]
fn batch_shapes_are_consistent() {
    let data = SyntheticDataset::generate(&DatasetConfig::tiny());
    for batch in 1usize..17 {
        for (images, labels) in data.train_batches(batch) {
            let s = images.shape().to_vec();
            assert_eq!(s[0], labels.len());
            assert_eq!(&s[1..], &[3usize, 16, 16]);
        }
    }
}

/// Pixel values stay within a sane numeric envelope (prototype
/// amplitude 1, gain <= 1.2, noise sigma bounded).
#[test]
fn pixels_are_bounded() {
    let mut rng = Rng64::seed_from_u64(0xE3);
    for _ in 0..8 {
        let mut cfg = DatasetConfig::tiny();
        cfg.seed = rng.below(50);
        let data = SyntheticDataset::generate(&cfg);
        for (images, _) in data.train_batches(8) {
            let (lo, hi) = images.min_max();
            assert!(lo > -10.0 && hi < 10.0, "range {lo}..{hi}");
            assert!(images.as_slice().iter().all(|v| v.is_finite()));
        }
    }
}
