//! Property-based tests for the synthetic dataset generator.

use appmult_data::{DatasetConfig, SyntheticDataset};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generation is deterministic per seed and sensitive to it.
    #[test]
    fn deterministic_per_seed(seed in 0u64..1000) {
        let mut cfg = DatasetConfig::tiny();
        cfg.seed = seed;
        let a = SyntheticDataset::generate(&cfg);
        let b = SyntheticDataset::generate(&cfg);
        let (ba, bb) = (a.train_batches(4), b.train_batches(4));
        prop_assert_eq!(ba.len(), bb.len());
        for ((ta, la), (tb, lb)) in ba.iter().zip(&bb) {
            prop_assert_eq!(ta, tb);
            prop_assert_eq!(la, lb);
        }
    }

    /// Every label is a valid class index and all classes are represented
    /// across the training split.
    #[test]
    fn labels_are_valid_and_complete(classes in 2usize..8, per_class in 2usize..6) {
        let cfg = DatasetConfig::small(classes, per_class, 1);
        let data = SyntheticDataset::generate(&cfg);
        let batches = data.train_batches(classes * per_class);
        let mut seen = vec![false; classes];
        for (_, labels) in &batches {
            for &l in labels {
                prop_assert!(l < classes);
                seen[l] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "all classes in the train split");
    }

    /// Batch tensors always match their label counts and config shape.
    #[test]
    fn batch_shapes_are_consistent(batch in 1usize..17) {
        let data = SyntheticDataset::generate(&DatasetConfig::tiny());
        for (images, labels) in data.train_batches(batch) {
            let s = images.shape().to_vec();
            prop_assert_eq!(s[0], labels.len());
            prop_assert_eq!(&s[1..], &[3usize, 16, 16]);
        }
    }

    /// Pixel values stay within a sane numeric envelope (prototype
    /// amplitude 1, gain <= 1.2, noise sigma bounded).
    #[test]
    fn pixels_are_bounded(seed in 0u64..50) {
        let mut cfg = DatasetConfig::tiny();
        cfg.seed = seed;
        let data = SyntheticDataset::generate(&cfg);
        for (images, _) in data.train_batches(8) {
            let (lo, hi) = images.min_max();
            prop_assert!(lo > -10.0 && hi < 10.0, "range {lo}..{hi}");
            prop_assert!(images.as_slice().iter().all(|v| v.is_finite()));
        }
    }
}
