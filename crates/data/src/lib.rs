//! Deterministic synthetic CIFAR-style datasets.
//!
//! The paper trains on CIFAR-10 / CIFAR-100, which are not available in
//! this offline environment. This crate substitutes structured synthetic
//! image-classification tasks that exercise exactly the same code paths:
//! each class owns a smooth random spatial prototype; samples are the
//! prototype under random translation, per-sample gain, and Gaussian
//! noise. Convnets must learn translation-tolerant spatial features to
//! separate the classes, and task difficulty is controlled by the noise
//! level — so the STE-vs-difference-gradient comparisons run on a
//! non-trivial workload.
//!
//! All generation is deterministic per seed.
//!
//! # Example
//!
//! ```
//! use appmult_data::{DatasetConfig, SyntheticDataset};
//!
//! let data = SyntheticDataset::generate(&DatasetConfig::tiny());
//! let train = data.train_batches(8);
//! assert!(!train.is_empty());
//! let (images, labels) = &train[0];
//! assert_eq!(images.shape()[0], labels.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use appmult_nn::Tensor;
use appmult_rng::Rng64;

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Number of classes.
    pub classes: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height and width.
    pub hw: (usize, usize),
    /// Gaussian pixel-noise standard deviation.
    pub noise: f32,
    /// Maximum random translation in pixels (toroidal shift).
    pub max_shift: usize,
    /// Master RNG seed.
    pub seed: u64,
}

impl DatasetConfig {
    /// CIFAR-10-like: 10 classes, 3x32x32.
    pub fn cifar10_like(train_per_class: usize, test_per_class: usize) -> Self {
        Self {
            classes: 10,
            train_per_class,
            test_per_class,
            channels: 3,
            hw: (32, 32),
            noise: 0.35,
            max_shift: 3,
            seed: 2024,
        }
    }

    /// CIFAR-100-like: 100 classes, 3x32x32.
    pub fn cifar100_like(train_per_class: usize, test_per_class: usize) -> Self {
        Self {
            classes: 100,
            ..Self::cifar10_like(train_per_class, test_per_class)
        }
    }

    /// A small 16x16 configuration for CPU-scale experiments.
    pub fn small(classes: usize, train_per_class: usize, test_per_class: usize) -> Self {
        Self {
            classes,
            train_per_class,
            test_per_class,
            channels: 3,
            hw: (16, 16),
            noise: 0.3,
            max_shift: 2,
            seed: 2024,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        Self::small(4, 8, 4)
    }
}

/// A generated dataset with train and test splits.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    config: DatasetConfig,
    train_images: Vec<f32>,
    train_labels: Vec<usize>,
    test_images: Vec<f32>,
    test_labels: Vec<usize>,
}

impl SyntheticDataset {
    /// Generates the dataset for a configuration (deterministic per seed).
    ///
    /// # Panics
    ///
    /// Panics if any size in the configuration is zero.
    pub fn generate(config: &DatasetConfig) -> Self {
        assert!(
            config.classes > 0
                && config.train_per_class > 0
                && config.test_per_class > 0
                && config.channels > 0
                && config.hw.0 > 0
                && config.hw.1 > 0,
            "all dataset dimensions must be positive"
        );
        let mut rng = Rng64::seed_from_u64(config.seed);
        let prototypes: Vec<Vec<f32>> = (0..config.classes)
            .map(|_| prototype(config, &mut rng))
            .collect();

        let gen_split = |per_class: usize, rng: &mut Rng64| {
            let n = config.classes * per_class;
            let px = config.channels * config.hw.0 * config.hw.1;
            let mut images = Vec::with_capacity(n * px);
            let mut labels = Vec::with_capacity(n);
            for s in 0..n {
                let class = s % config.classes;
                sample(config, &prototypes[class], rng, &mut images);
                labels.push(class);
            }
            (images, labels)
        };
        let (train_images, train_labels) = gen_split(config.train_per_class, &mut rng);
        let (test_images, test_labels) = gen_split(config.test_per_class, &mut rng);
        Self {
            config: config.clone(),
            train_images,
            train_labels,
            test_images,
            test_labels,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_labels.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_labels.len()
    }

    fn batches(
        &self,
        images: &[f32],
        labels: &[usize],
        batch_size: usize,
    ) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0, "batch size must be positive");
        let (h, w) = self.config.hw;
        let px = self.config.channels * h * w;
        let n = labels.len();
        // Interleave classes within batches by striding through the data.
        let mut order: Vec<usize> = (0..n).collect();
        // Deterministic stride permutation: coprime step.
        let step = coprime_step(n);
        for (i, o) in order.iter_mut().enumerate() {
            *o = (i * step) % n;
        }
        let mut out = vec![];
        for chunk in order.chunks(batch_size) {
            if chunk.len() < batch_size && !out.is_empty() {
                break; // drop ragged tail for uniform batch shapes
            }
            let mut data = Vec::with_capacity(chunk.len() * px);
            let mut lab = Vec::with_capacity(chunk.len());
            for &idx in chunk {
                data.extend_from_slice(&images[idx * px..(idx + 1) * px]);
                lab.push(labels[idx]);
            }
            out.push((
                Tensor::from_vec(data, &[chunk.len(), self.config.channels, h, w]),
                lab,
            ));
        }
        out
    }

    /// Training split as uniform mini-batches (ragged tail dropped).
    pub fn train_batches(&self, batch_size: usize) -> Vec<(Tensor, Vec<usize>)> {
        self.batches(&self.train_images, &self.train_labels, batch_size)
    }

    /// Test split as mini-batches.
    pub fn test_batches(&self, batch_size: usize) -> Vec<(Tensor, Vec<usize>)> {
        self.batches(&self.test_images, &self.test_labels, batch_size)
    }
}

/// Largest step < n that is coprime with n (identity-avoiding stride).
fn coprime_step(n: usize) -> usize {
    if n <= 2 {
        return 1;
    }
    let mut step = n / 2 + 1;
    while gcd(step, n) != 1 {
        step += 1;
    }
    step
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Smooth class prototype: low-resolution random grid, bilinearly
/// upsampled, unit amplitude.
fn prototype(config: &DatasetConfig, rng: &mut Rng64) -> Vec<f32> {
    let (h, w) = config.hw;
    let grid = 4usize;
    let mut out = Vec::with_capacity(config.channels * h * w);
    for _ in 0..config.channels {
        let coarse: Vec<f32> = (0..grid * grid)
            .map(|_| rng.uniform_f32(-1.0, 1.0))
            .collect();
        for y in 0..h {
            for x in 0..w {
                let gy = y as f32 * (grid - 1) as f32 / (h.max(2) - 1) as f32;
                let gx = x as f32 * (grid - 1) as f32 / (w.max(2) - 1) as f32;
                let (y0, x0) = (gy as usize, gx as usize);
                let (y1, x1) = ((y0 + 1).min(grid - 1), (x0 + 1).min(grid - 1));
                let (fy, fx) = (gy - y0 as f32, gx - x0 as f32);
                let v = coarse[y0 * grid + x0] * (1.0 - fy) * (1.0 - fx)
                    + coarse[y0 * grid + x1] * (1.0 - fy) * fx
                    + coarse[y1 * grid + x0] * fy * (1.0 - fx)
                    + coarse[y1 * grid + x1] * fy * fx;
                out.push(v);
            }
        }
    }
    out
}

/// One sample: shifted prototype + gain jitter + Gaussian noise.
fn sample(config: &DatasetConfig, proto: &[f32], rng: &mut Rng64, out: &mut Vec<f32>) {
    let (h, w) = config.hw;
    let ms = config.max_shift as isize;
    let dy = rng.range_i64(-(ms as i64), ms as i64) as isize;
    let dx = rng.range_i64(-(ms as i64), ms as i64) as isize;
    let gain = rng.uniform_f32(0.8, 1.2);
    for c in 0..config.channels {
        let base = c * h * w;
        for y in 0..h {
            for x in 0..w {
                let sy = (y as isize + dy).rem_euclid(h as isize) as usize;
                let sx = (x as isize + dx).rem_euclid(w as isize) as usize;
                let noise = rng.normal_f32() * config.noise;
                out.push(proto[base + sy * w + sx] * gain + noise);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticDataset::generate(&DatasetConfig::tiny());
        let b = SyntheticDataset::generate(&DatasetConfig::tiny());
        assert_eq!(a.train_images, b.train_images);
        assert_eq!(a.test_labels, b.test_labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticDataset::generate(&DatasetConfig::tiny());
        let mut cfg = DatasetConfig::tiny();
        cfg.seed = 999;
        let b = SyntheticDataset::generate(&cfg);
        assert_ne!(a.train_images, b.train_images);
    }

    #[test]
    fn batches_have_uniform_shape_and_all_classes() {
        let data = SyntheticDataset::generate(&DatasetConfig::tiny());
        let batches = data.train_batches(8);
        assert!(!batches.is_empty());
        let mut seen = std::collections::HashSet::new();
        for (images, labels) in &batches {
            assert_eq!(images.shape(), &[8, 3, 16, 16]);
            assert_eq!(labels.len(), 8);
            seen.extend(labels.iter().copied());
        }
        assert_eq!(seen.len(), 4, "all classes appear");
    }

    #[test]
    fn sample_counts_match_config() {
        let data = SyntheticDataset::generate(&DatasetConfig::small(5, 6, 3));
        assert_eq!(data.train_len(), 30);
        assert_eq!(data.test_len(), 15);
    }

    #[test]
    fn classes_are_separable_by_prototype_correlation() {
        // Nearest-prototype classification on noiseless prototypes should
        // beat chance by a wide margin: the task is learnable.
        let cfg = DatasetConfig::small(6, 4, 8);
        let data = SyntheticDataset::generate(&cfg);
        let px = 3 * 16 * 16;
        // Recover prototypes as per-class training means.
        let mut protos = vec![vec![0.0f32; px]; 6];
        let mut counts = vec![0usize; 6];
        for (i, &lab) in data.train_labels.iter().enumerate() {
            let img = &data.train_images[i * px..(i + 1) * px];
            for (pv, &im) in protos[lab].iter_mut().zip(img) {
                *pv += im;
            }
            counts[lab] += 1;
        }
        for (p, &c) in protos.iter_mut().zip(&counts) {
            for v in p.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut hits = 0;
        for (i, &lab) in data.test_labels.iter().enumerate() {
            let img = &data.test_images[i * px..(i + 1) * px];
            let best = protos
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    let sa: f32 = a.iter().zip(img).map(|(x, y)| x * y).sum();
                    let sb: f32 = b.iter().zip(img).map(|(x, y)| x * y).sum();
                    sa.total_cmp(&sb)
                })
                .map(|(k, _)| k)
                .expect("nonempty");
            if best == lab {
                hits += 1;
            }
        }
        let acc = hits as f64 / data.test_len() as f64;
        assert!(acc > 0.5, "nearest-prototype accuracy only {acc}");
    }

    #[test]
    fn cifar_like_presets_have_right_shapes() {
        let cfg = DatasetConfig::cifar10_like(2, 1);
        assert_eq!(cfg.classes, 10);
        assert_eq!(cfg.hw, (32, 32));
        let cfg100 = DatasetConfig::cifar100_like(1, 1);
        assert_eq!(cfg100.classes, 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_classes() {
        let mut cfg = DatasetConfig::tiny();
        cfg.classes = 0;
        SyntheticDataset::generate(&cfg);
    }
}
