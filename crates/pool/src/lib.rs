//! Zero-dependency scoped data parallelism for the workspace's hot loops.
//!
//! The LUT-GEMM kernels, gradient-table builds, and exhaustive circuit
//! simulations all share one shape: a large output buffer whose rows can be
//! computed independently from shared read-only inputs. [`Pool::run_rows`]
//! partitions such a buffer into contiguous, *disjoint* `&mut` chunks — one
//! per worker — and runs them under [`std::thread::scope`]. Because every
//! output element is written by exactly one worker and each worker iterates
//! its rows in the same order as the serial loop, results are bit-identical
//! to a serial run regardless of the thread count; no atomics, no locks, no
//! floating-point reassociation.
//!
//! The pool is *scoped*, not persistent: threads are spawned per call and
//! joined before the call returns, so borrowed inputs need no `'static`
//! lifetimes and a panicking worker propagates to the caller. Spawn cost is
//! tens of microseconds, negligible against the `O(M·J·K)` loops it covers.
//!
//! Thread count resolution for [`Pool::global`], in order:
//!
//! 1. [`set_global_threads`] override (used by benchmarks),
//! 2. the `APPMULT_THREADS` environment variable (a positive integer;
//!    `1` forces fully serial execution),
//! 3. [`std::thread::available_parallelism`].
//!
//! On a 1-core host — or with `APPMULT_THREADS=1` — every entry point
//! degrades to a plain serial loop on the calling thread with no spawns.
//!
//! # Example
//!
//! ```
//! use appmult_pool::Pool;
//!
//! // 4 rows of 3 columns; each worker fills its own rows.
//! let mut out = vec![0usize; 12];
//! Pool::new(4).run_rows(&mut out, 3, |first_row, chunk| {
//!     for (r, row) in chunk.chunks_mut(3).enumerate() {
//!         for (c, v) in row.iter_mut().enumerate() {
//!             *v = (first_row + r) * 10 + c;
//!         }
//!     }
//! });
//! assert_eq!(out[3..6], [10, 11, 12]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Name of the environment variable that pins the worker count.
pub const THREADS_ENV: &str = "APPMULT_THREADS";

/// Why an `APPMULT_THREADS`-style value could not be parsed.
///
/// Returned by [`parse_threads`] and [`try_set_global_threads_str`]; the
/// same failure on the environment-variable path surfaces once per
/// offending value as an `env.parse_error` event on the global
/// [`appmult_obs`] sink before falling back to auto-detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadsParseError {
    /// The value is not a base-10 unsigned integer.
    NotANumber(String),
    /// The value parsed but a pool needs at least one worker.
    Zero,
}

impl std::fmt::Display for ThreadsParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotANumber(v) => {
                write!(f, "{THREADS_ENV}: {v:?} is not a positive integer")
            }
            Self::Zero => write!(f, "{THREADS_ENV}: thread count must be at least 1"),
        }
    }
}

impl std::error::Error for ThreadsParseError {}

/// Parses an `APPMULT_THREADS`-style value into a worker count.
///
/// Leading/trailing whitespace is ignored. Unlike the environment fallback
/// path, this is strict: empty strings, zero, and garbage are errors.
///
/// # Errors
///
/// [`ThreadsParseError::NotANumber`] if the trimmed value is not a base-10
/// unsigned integer, [`ThreadsParseError::Zero`] if it is `0`.
pub fn parse_threads(value: &str) -> Result<usize, ThreadsParseError> {
    let trimmed = value.trim();
    match trimmed.parse::<usize>() {
        Ok(0) => Err(ThreadsParseError::Zero),
        Ok(n) => Ok(n),
        Err(_) => Err(ThreadsParseError::NotANumber(trimmed.to_string())),
    }
}

/// Strict variant of [`set_global_threads`]: parses `value` and installs it
/// as the process-wide override.
///
/// # Errors
///
/// Returns the [`ThreadsParseError`] without touching the override if
/// `value` does not parse.
pub fn try_set_global_threads_str(value: &str) -> Result<usize, ThreadsParseError> {
    let n = parse_threads(value)?;
    set_global_threads(n);
    Ok(n)
}

/// Values that already produced an `env.parse_error` event, so each
/// offending setting warns exactly once per process (keyed by value: tests
/// exercising different garbage strings stay independent).
static WARNED_VALUES: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Emits a one-time `env.parse_error` event for a bad env value. Returns
/// true when this call was the first sighting (used by tests).
fn warn_env_once(value: &str, error: &ThreadsParseError) -> bool {
    let mut warned = WARNED_VALUES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if warned.iter().any(|w| w == value) {
        return false;
    }
    warned.push(value.to_string());
    appmult_obs::global().event(
        "env.parse_error",
        &[
            ("var", THREADS_ENV.into()),
            ("value", value.into()),
            ("error", error.to_string().into()),
            ("fallback", "available_parallelism".into()),
        ],
    );
    true
}

/// Process-wide override installed by [`set_global_threads`]
/// (0 = no override).
static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// A fixed worker count for scoped data-parallel loops.
///
/// `Pool` is a tiny value type (it owns no threads); copy it freely. Use
/// [`Pool::global`] for production paths and [`Pool::new`] where an explicit
/// count is needed (parity tests, benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
    /// Work-size floor: buffers smaller than this many elements run
    /// serially regardless of the worker count (0 = no floor).
    min_elems: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            min_elems: 0,
        }
    }

    /// A single-worker pool: every call runs serially on the caller.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// The pool configured by the environment: the [`set_global_threads`]
    /// override if installed, else `APPMULT_THREADS`, else
    /// [`std::thread::available_parallelism`].
    pub fn global() -> Self {
        let o = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
        if o > 0 {
            return Self::new(o);
        }
        Self::new(threads_from_env(std::env::var(THREADS_ENV).ok().as_deref()))
    }

    /// Worker count of this pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns a copy of this pool with a work-size floor: any
    /// [`run_rows`](Self::run_rows) call whose output buffer has fewer than
    /// `min_elems` elements runs serially on the calling thread, skipping
    /// spawn overhead that would dominate tiny shapes (the small-shape
    /// regression recorded in `BENCH_par.json`). Because the serial path is
    /// bit-identical to the parallel one, the floor never changes results —
    /// only where they are computed. Zero disables the floor.
    #[must_use]
    pub fn with_min_elems(mut self, min_elems: usize) -> Self {
        self.min_elems = min_elems;
        self
    }

    /// The work-size floor installed by [`with_min_elems`](Self::with_min_elems).
    pub fn min_elems(&self) -> usize {
        self.min_elems
    }

    /// Splits `out` into one contiguous chunk of whole rows per worker and
    /// runs `f(first_row_index, chunk)` on each chunk in parallel.
    ///
    /// Rows are `row_len` elements long and are distributed as evenly as
    /// possible (the first `rows % workers` chunks get one extra row), in
    /// order, so chunk boundaries — and therefore per-element evaluation
    /// order — never depend on the worker count. With one worker (or fewer
    /// than two rows) `f` runs once, inline, on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `row_len` is zero or does not divide `out.len()`, or if
    /// any worker panics.
    pub fn run_rows<T, F>(&self, out: &mut [T], row_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(row_len > 0, "row_len must be positive");
        assert_eq!(
            out.len() % row_len,
            0,
            "buffer length {} is not a whole number of rows of {row_len}",
            out.len()
        );
        let rows = out.len() / row_len;
        let workers = if out.len() < self.min_elems {
            1 // below the work-size floor: spawn cost would dominate
        } else {
            self.threads.min(rows).max(1)
        };
        // Per-worker busy-time attribution (a no-op branch unless a
        // recording sink is installed process-wide).
        let obs = appmult_obs::global();
        if workers == 1 {
            if rows > 0 {
                let _span = obs.span("pool.worker");
                f(0, out);
            }
            return;
        }
        let base = rows / workers;
        let extra = rows % workers;
        std::thread::scope(|scope| {
            let mut rest = out;
            let mut first_row = 0usize;
            for w in 0..workers {
                let chunk_rows = base + usize::from(w < extra);
                let (chunk, tail) = rest.split_at_mut(chunk_rows * row_len);
                rest = tail;
                let start = first_row;
                first_row += chunk_rows;
                let f = &f;
                let obs = &obs;
                if w + 1 == workers {
                    // Run the final chunk on the calling thread; the scope
                    // still joins the spawned workers before returning.
                    let _span = obs.span("pool.worker");
                    f(start, chunk);
                } else {
                    scope.spawn(move || {
                        let _span = obs.span("pool.worker");
                        f(start, chunk);
                    });
                }
            }
        });
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::global()
    }
}

/// Installs a process-wide worker-count override that takes precedence over
/// `APPMULT_THREADS` (pass 0 to remove it). Intended for benchmark harnesses
/// that flip between serial and parallel runs of code using [`Pool::global`];
/// tests that need a specific count should construct [`Pool::new`] instead.
pub fn set_global_threads(threads: usize) {
    GLOBAL_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Resolves a worker count from an `APPMULT_THREADS`-style value: a positive
/// integer is taken as-is; anything else (unset, empty, `0`, garbage) falls
/// back to [`std::thread::available_parallelism`]. Unset and empty values
/// are silent (CI matrices legitimately export `APPMULT_THREADS=""`), but a
/// present-and-malformed value additionally emits a one-time
/// `env.parse_error` event on the global [`appmult_obs`] sink so the typo is
/// visible instead of silently ignored.
fn threads_from_env(value: Option<&str>) -> usize {
    let fallback = || std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    match value {
        None => fallback(),
        Some(v) if v.trim().is_empty() => fallback(),
        Some(v) => match parse_threads(v) {
            Ok(n) => n,
            Err(e) => {
                warn_env_once(v, &e);
                fallback()
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Every row is written exactly once, with the right first-row offset.
    #[test]
    fn run_rows_covers_every_row_exactly_once() {
        for threads in [1, 2, 3, 4, 7, 16] {
            for rows in [0usize, 1, 2, 3, 5, 16, 31] {
                let row_len = 3;
                let mut out = vec![usize::MAX; rows * row_len];
                Pool::new(threads).run_rows(&mut out, row_len, |first, chunk| {
                    for (r, row) in chunk.chunks_mut(row_len).enumerate() {
                        for v in row.iter_mut() {
                            assert_eq!(*v, usize::MAX, "row written twice");
                            *v = first + r;
                        }
                    }
                });
                let expect: Vec<usize> = (0..rows)
                    .flat_map(|r| std::iter::repeat_n(r, row_len))
                    .collect();
                assert_eq!(out, expect, "threads={threads} rows={rows}");
            }
        }
    }

    /// The partition is independent of the worker count, so a parallel fill
    /// is bit-identical to the serial one.
    #[test]
    fn parallel_fill_matches_serial() {
        let fill = |pool: Pool| {
            let mut out = vec![0.0f32; 13 * 7];
            pool.run_rows(&mut out, 7, |first, chunk| {
                for (r, row) in chunk.chunks_mut(7).enumerate() {
                    let mut acc = (first + r) as f32 * 0.1;
                    for (c, v) in row.iter_mut().enumerate() {
                        acc += (c as f32 + 0.3).sin();
                        *v = acc;
                    }
                }
            });
            out
        };
        let serial = fill(Pool::serial());
        for threads in [2, 3, 5, 8] {
            assert_eq!(fill(Pool::new(threads)), serial, "threads={threads}");
        }
    }

    /// More workers than rows clamps; one worker never spawns (observable as
    /// `f` running on the calling thread).
    #[test]
    fn serial_pool_runs_inline() {
        let caller = std::thread::current().id();
        let mut out = vec![0u8; 4];
        Pool::serial().run_rows(&mut out, 1, |_, _| {
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    /// Workers actually run concurrently when asked to (the spawned chunks
    /// exist as distinct invocations).
    #[test]
    fn chunk_count_matches_worker_clamp() {
        let calls = AtomicUsize::new(0);
        let mut out = vec![0u8; 10];
        Pool::new(4).run_rows(&mut out, 1, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        // Clamp: 3 rows can use at most 3 workers.
        calls.store(0, Ordering::Relaxed);
        let mut small = vec![0u8; 3];
        Pool::new(16).run_rows(&mut small, 1, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn env_parsing_falls_back_on_garbage() {
        assert_eq!(threads_from_env(Some("3")), 3);
        assert_eq!(threads_from_env(Some(" 8 ")), 8);
        let fallback = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        assert_eq!(threads_from_env(None), fallback);
        assert_eq!(threads_from_env(Some("")), fallback);
        assert_eq!(threads_from_env(Some("0")), fallback);
        assert_eq!(threads_from_env(Some("lots")), fallback);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_buffer_is_rejected() {
        let mut out = vec![0u8; 7];
        Pool::new(2).run_rows(&mut out, 3, |_, _| {});
    }

    /// With a recording sink installed, every chunk shows up as a
    /// `pool.worker` span and spawned workers appear in the per-thread
    /// busy map.
    #[test]
    fn worker_busy_time_is_attributed_when_recording() {
        let obs = appmult_obs::ObsSink::recording();
        appmult_obs::set_global(&obs);
        let mut out = vec![0u64; 4 * 8];
        Pool::new(4).run_rows(&mut out, 8, |first, chunk| {
            for (r, row) in chunk.chunks_mut(8).enumerate() {
                for v in row.iter_mut() {
                    *v = (first + r) as u64;
                }
            }
        });
        appmult_obs::set_global(&appmult_obs::ObsSink::null());
        let hist = obs
            .histogram("span.pool.worker")
            .expect("worker spans recorded");
        // >= rather than ==: sibling tests running concurrently may also
        // hit the global sink while it is installed.
        assert!(hist.count >= 4, "count {}", hist.count);
        assert!(obs.to_json().contains("\"busy_us\":"));
    }

    #[test]
    fn global_override_wins() {
        set_global_threads(5);
        assert_eq!(Pool::global().threads(), 5);
        set_global_threads(0);
        assert!(Pool::global().threads() >= 1);
    }

    #[test]
    fn parse_threads_is_strict() {
        assert_eq!(parse_threads("3"), Ok(3));
        assert_eq!(parse_threads(" 8 "), Ok(8));
        assert_eq!(parse_threads("0"), Err(ThreadsParseError::Zero));
        assert_eq!(
            parse_threads("lots"),
            Err(ThreadsParseError::NotANumber("lots".to_string()))
        );
        assert_eq!(
            parse_threads(""),
            Err(ThreadsParseError::NotANumber(String::new()))
        );
        assert_eq!(
            parse_threads("-2"),
            Err(ThreadsParseError::NotANumber("-2".to_string()))
        );
        let msg = ThreadsParseError::NotANumber("lots".into()).to_string();
        assert!(msg.contains(THREADS_ENV) && msg.contains("lots"), "{msg}");
    }

    #[test]
    fn try_set_global_threads_str_rejects_garbage_without_side_effects() {
        set_global_threads(0);
        assert!(try_set_global_threads_str("banana").is_err());
        assert_eq!(GLOBAL_OVERRIDE.load(Ordering::Relaxed), 0);
        assert_eq!(try_set_global_threads_str(" 6 "), Ok(6));
        assert_eq!(Pool::global().threads(), 6);
        set_global_threads(0);
    }

    /// A malformed (present, non-empty) env value warns exactly once per
    /// offending value on the global obs sink; empty values are silent.
    #[test]
    fn env_parse_failure_warns_once() {
        let obs = appmult_obs::ObsSink::recording();
        appmult_obs::set_global(&obs);
        // A value no other test uses, so the per-value dedup is ours alone.
        let fallback = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        assert_eq!(threads_from_env(Some("warn-once-probe")), fallback);
        assert_eq!(threads_from_env(Some("warn-once-probe")), fallback);
        assert_eq!(threads_from_env(Some("   ")), fallback); // silent
        appmult_obs::set_global(&appmult_obs::ObsSink::null());
        let hits = obs
            .events()
            .iter()
            .filter(|e| e.kind == "env.parse_error" && e.to_json_line().contains("warn-once-probe"))
            .count();
        assert_eq!(hits, 1, "expected exactly one warning event");
    }

    /// Below the work-size floor the pool never spawns: the closure runs
    /// once, inline, on the calling thread. At or above the floor the
    /// normal partition applies — and the outputs are identical either way.
    #[test]
    fn work_size_floor_forces_serial_below_threshold() {
        let caller = std::thread::current().id();
        let calls = AtomicUsize::new(0);
        let mut out = vec![0u8; 64];
        Pool::new(8)
            .with_min_elems(65)
            .run_rows(&mut out, 4, |_, _| {
                calls.fetch_add(1, Ordering::Relaxed);
                assert_eq!(std::thread::current().id(), caller);
            });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "floor must run inline");

        calls.store(0, Ordering::Relaxed);
        Pool::new(8)
            .with_min_elems(64)
            .run_rows(&mut out, 4, |_, _| {
                calls.fetch_add(1, Ordering::Relaxed);
            });
        assert_eq!(calls.load(Ordering::Relaxed), 8, "at the floor, parallel");

        // Identical results with and without the floor.
        let fill = |pool: Pool| {
            let mut buf = vec![0u32; 60];
            pool.run_rows(&mut buf, 5, |first, chunk| {
                for (r, row) in chunk.chunks_mut(5).enumerate() {
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = ((first + r) * 100 + c) as u32;
                    }
                }
            });
            buf
        };
        assert_eq!(fill(Pool::new(4).with_min_elems(1000)), fill(Pool::new(4)));
    }
}
