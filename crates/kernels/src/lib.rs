//! Cache-blocked LUT-GEMM kernels for the AppMult layers.
//!
//! The retraining loop spends nearly all of its time evaluating
//! `out[m][j] = Σ_k table[(W[j][k] << B) | X[m][k]]` and the two Eq. 9
//! gradient sums — one dependent table gather per MAC. This crate houses
//! the kernel engine behind those loops:
//!
//! * [`Kernel::Naive`] is the reference scalar triple loop, kept verbatim
//!   as the conformance baseline;
//! * [`Kernel::Tiled`] blocks the iteration space over `(M, J, K)` so the
//!   quantized operand tiles and the LUT rows they touch stay resident in
//!   L1/L2, hoists each weight code's LUT row base (`wv << B`) once per
//!   `(j, k)`-tile and reuses it across every batch row of the M-tile
//!   (turning the 2-D gather into a 1-D indexed load off a register-held
//!   base), and register-blocks the accumulation — a 2×4 forward
//!   micro-kernel with eight independent `i64` accumulators, and K-chunks
//!   of eight `f32` output registers in the backward kernels. All table
//!   indexing is masked (`idx & (len - 1)`, power-of-two tables), which
//!   lets the compiler elide bounds checks without `unsafe`.
//!
//! **Exactness.** The forward accumulator is an exact `i64`, so tiling and
//! re-association are bit-safe: any summation order yields the same
//! integer, and the single dequantization of that integer yields the same
//! `f32`. The backward sums are `f32` and therefore order-sensitive; the
//! tiled backward kernels preserve the naive kernel's per-output
//! accumulation order exactly (ascending `j` for `dX`, ascending `m` for
//! `dW` — tiles only regroup *which rows are visited when*, never the
//! order of additions into one output element), so every kernel in this
//! crate is bit-identical to every other for all shapes, tile sizes, and
//! worker partitions. The differential conformance suite in the workspace
//! root enforces this.
//!
//! Kernel selection follows the same pattern as `appmult-pool`:
//! [`set_global_kernel`] override, else the `APPMULT_KERNEL` environment
//! variable (`naive`, `tiled`, or `tiled:MJxJKxKK`), else the auto-tuned
//! tiled default.
//!
//! The kernels are chunk-level: callers (the `appmult-retrain` layers)
//! partition output rows across `appmult-pool` workers and invoke a kernel
//! per chunk, so tiles compose with worker chunks.
//!
//! # Example
//!
//! ```
//! use appmult_kernels::{forward_acc, GemmShape, Kernel};
//!
//! // 2x2 exact product LUT: table[(w << 1) | x] = w * x for 1-bit codes.
//! let table = [0u32, 0, 0, 1];
//! let shape = GemmShape { j: 1, k: 2, bits: 1 };
//! let wq = [1u16, 1]; // one weight row [1, 1]
//! let xq = [1u16, 0]; // one batch row [1, 0]
//! let mut acc = [0i64; 1];
//! forward_acc(Kernel::tiled_default(), shape, &table, &wq, &xq, &mut acc);
//! assert_eq!(acc, [1]); // 1*1 + 1*0
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex;

/// Name of the environment variable that selects the kernel.
pub const KERNEL_ENV: &str = "APPMULT_KERNEL";

/// Process-wide override installed by [`set_global_kernel`].
static GLOBAL_OVERRIDE: Mutex<Option<Kernel>> = Mutex::new(None);

/// LUT-GEMM kernel selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Reference scalar triple loop: one dependent 2-D table gather per
    /// MAC, no blocking. The conformance baseline.
    Naive,
    /// Cache-blocked kernel. `mj`/`jk`/`kk` are the tile extents along the
    /// batch (M), output (J), and reduction (K) dimensions; zero extents
    /// are treated as 1.
    Tiled {
        /// Batch-dimension (M) tile extent.
        mj: usize,
        /// Output-dimension (J) tile extent.
        jk: usize,
        /// Reduction-dimension (K) tile extent.
        kk: usize,
    },
}

/// Error returned by [`Kernel::parse`] for unrecognized specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelParseError(String);

impl std::fmt::Display for KernelParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid kernel spec {:?} (expected \"naive\", \"tiled\", or \"tiled:MJxJKxKK\")",
            self.0
        )
    }
}

impl std::error::Error for KernelParseError {}

impl Kernel {
    /// The auto-tuned tiled configuration: M-tiles of 64 batch rows (the
    /// reuse distance of each hoisted LUT row), J-tiles of 16 output
    /// channels, K-tiles of 64 reduction steps (the hoisted-row working
    /// set, ≤ 64 × 2^B × 4 bytes, stays L2-resident while the operand
    /// tiles stay in L1).
    pub const fn tiled_default() -> Self {
        Kernel::Tiled {
            mj: 64,
            jk: 16,
            kk: 64,
        }
    }

    /// Parses a kernel spec: `naive`, `tiled`, or `tiled:MJxJKxKK` with
    /// three positive tile extents (e.g. `tiled:64x16x64`).
    ///
    /// # Errors
    ///
    /// Returns a [`KernelParseError`] naming the offending spec if it is
    /// not one of the forms above.
    pub fn parse(spec: &str) -> Result<Self, KernelParseError> {
        let err = || KernelParseError(spec.to_string());
        match spec.trim() {
            "naive" => Ok(Kernel::Naive),
            "tiled" => Ok(Self::tiled_default()),
            s => {
                let dims = s.strip_prefix("tiled:").ok_or_else(err)?;
                let mut parts = dims.split('x').map(|p| p.trim().parse::<usize>());
                let mut next = || parts.next().ok_or_else(err)?.map_err(|_| err());
                let (mj, jk, kk) = (next()?, next()?, next()?);
                if parts.next().is_some() || mj == 0 || jk == 0 || kk == 0 {
                    return Err(err());
                }
                Ok(Kernel::Tiled { mj, jk, kk })
            }
        }
    }

    /// The kernel configured by the environment: the [`set_global_kernel`]
    /// override if installed, else `APPMULT_KERNEL`, else
    /// [`Kernel::tiled_default`]. Unparseable environment values fall back
    /// to the default (mirroring `APPMULT_THREADS` handling).
    pub fn global() -> Self {
        if let Some(k) = *GLOBAL_OVERRIDE.lock().expect("kernel override lock") {
            return k;
        }
        kernel_from_env(std::env::var(KERNEL_ENV).ok().as_deref())
    }

    /// Short human-readable label (`naive`, `tiled:64x16x64`).
    pub fn label(&self) -> String {
        match *self {
            Kernel::Naive => "naive".to_string(),
            Kernel::Tiled { mj, jk, kk } => format!("tiled:{mj}x{jk}x{kk}"),
        }
    }

    /// Whether this is a tiled configuration.
    pub fn is_tiled(&self) -> bool {
        matches!(self, Kernel::Tiled { .. })
    }

    /// Tile extents clamped to at least 1 (the naive kernel reports the
    /// degenerate `(usize::MAX, usize::MAX, usize::MAX)` single tile).
    fn tile_extents(&self) -> (usize, usize, usize) {
        match *self {
            Kernel::Naive => (usize::MAX, usize::MAX, usize::MAX),
            Kernel::Tiled { mj, jk, kk } => (mj.max(1), jk.max(1), kk.max(1)),
        }
    }
}

/// Installs a process-wide kernel override that takes precedence over
/// `APPMULT_KERNEL` (pass `None` to remove it). Intended for benchmark
/// harnesses; tests should prefer the explicit-kernel APIs.
pub fn set_global_kernel(kernel: Option<Kernel>) {
    *GLOBAL_OVERRIDE.lock().expect("kernel override lock") = kernel;
}

/// Strict variant of [`set_global_kernel`]: parses `spec` and installs the
/// result as the process-wide override.
///
/// # Errors
///
/// Returns the [`KernelParseError`] without touching the override if
/// `spec` does not parse.
pub fn try_set_global_kernel_str(spec: &str) -> Result<Kernel, KernelParseError> {
    let k = Kernel::parse(spec)?;
    set_global_kernel(Some(k));
    Ok(k)
}

/// Kernel specs that already produced an `env.parse_error` event, so each
/// offending setting warns exactly once per process (keyed by value: tests
/// exercising different garbage specs stay independent).
static WARNED_SPECS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Resolves a kernel from an `APPMULT_KERNEL`-style value; anything unset
/// or unparseable falls back to [`Kernel::tiled_default`]. Unset and empty
/// values are silent, but a present-and-malformed spec additionally emits a
/// one-time `env.parse_error` event on the global [`appmult_obs`] sink so
/// the typo is visible instead of silently ignored.
fn kernel_from_env(value: Option<&str>) -> Kernel {
    match value {
        None => Kernel::tiled_default(),
        Some(v) if v.trim().is_empty() => Kernel::tiled_default(),
        Some(v) => match Kernel::parse(v) {
            Ok(k) => k,
            Err(e) => {
                let mut warned = WARNED_SPECS
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if !warned.iter().any(|w| w == v) {
                    warned.push(v.to_string());
                    appmult_obs::global().event(
                        "env.parse_error",
                        &[
                            ("var", KERNEL_ENV.into()),
                            ("value", v.into()),
                            ("error", e.to_string().into()),
                            ("fallback", Kernel::tiled_default().label().into()),
                        ],
                    );
                }
                Kernel::tiled_default()
            }
        },
    }
}

/// Shape of one LUT-GEMM: `J` output rows, `K` reduction steps, `B`-bit
/// operand codes (the product/gradient tables are `2^B × 2^B`, row-major
/// in the weight code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Output dimension (weight rows).
    pub j: usize,
    /// Reduction dimension (patch length / input features).
    pub k: usize,
    /// Operand bit width `B`.
    pub bits: u32,
}

impl GemmShape {
    /// Number of batch rows held by an operand slice of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `len` is not a whole number of rows.
    fn rows_of(&self, len: usize, what: &str) -> usize {
        assert!(self.k > 0, "k must be positive");
        assert_eq!(len % self.k, 0, "{what} length {len} not a multiple of k");
        len / self.k
    }
}

/// Tile/hoist counters accumulated locally and flushed to the global
/// observability sink once per kernel call (the kernels run inside pool
/// workers, so per-tile atomic updates would be needless contention).
#[derive(Default)]
struct TileStats {
    tiles: u64,
    hoists: u64,
}

impl TileStats {
    fn flush(self) {
        if self.tiles > 0 {
            let obs = appmult_obs::global();
            obs.counter_add("kernel.tiles", self.tiles);
            obs.counter_add("kernel.lut_row_hoists", self.hoists);
        }
    }
}

/// Forward LUT-GEMM over one chunk of batch rows: sets
/// `acc[r][ji] = Σ_k table[(wq[ji][k] << bits) | xq[r][k]]` for every row
/// `r` of `xq` (prior `acc` contents are overwritten).
///
/// The accumulator is an exact `i64`, so every kernel produces the same
/// integers; dequantization is left to the caller.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `shape`, or if a code
/// indexes past `table` (codes must be `< 2^bits` against a full
/// `2^bits × 2^bits` table).
pub fn forward_acc(
    kernel: Kernel,
    shape: GemmShape,
    table: &[u32],
    wq: &[u16],
    xq: &[u16],
    acc: &mut [i64],
) {
    let GemmShape { j, k, bits } = shape;
    let rows = shape.rows_of(xq.len(), "xq");
    assert_eq!(wq.len(), j * k, "wq length mismatch");
    assert_eq!(acc.len(), rows * j, "acc length mismatch");
    if let Kernel::Naive = kernel {
        for (x_row, acc_row) in xq.chunks_exact(k).zip(acc.chunks_exact_mut(j)) {
            for (ji, a) in acc_row.iter_mut().enumerate() {
                let w_row = &wq[ji * k..(ji + 1) * k];
                let mut s = 0i64;
                for (wv, xv) in w_row.iter().zip(x_row) {
                    s += i64::from(table[((*wv as usize) << bits) | *xv as usize]);
                }
                *a = s;
            }
        }
        return;
    }

    let (mjt, jkt, kkt) = kernel.tile_extents();
    let n = 1usize << bits;
    assert_eq!(table.len(), n * n, "table must be 2^bits x 2^bits");
    // `(base | x) & mask` with a power-of-two table length proves the
    // index in range, so LLVM drops the per-gather bounds check. Operand
    // codes are < 2^bits (the quantizer clamps to qmax), so the mask
    // never changes a valid index.
    let mask = table.len() - 1;
    let mut stats = TileStats::default();
    acc.fill(0);
    let mut bases: Vec<u32> = Vec::new();
    for m0 in (0..rows).step_by(mjt) {
        let mt = mjt.min(rows - m0);
        for j0 in (0..j).step_by(jkt) {
            let jt = jkt.min(j - j0);
            for k0 in (0..k).step_by(kkt) {
                let kt = kkt.min(k - k0);
                stats.tiles += 1;
                // Hoist the LUT row base (`wv << bits`) of every weight
                // code in this (J-tile, K-tile) block once; each row is
                // then reused by all `mt` batch rows of the M-tile as a
                // 1-D indexed load.
                bases.clear();
                for ji in j0..j0 + jt {
                    for &wv in &wq[ji * k + k0..ji * k + k0 + kt] {
                        bases.push(u32::from(wv) << bits);
                    }
                }
                stats.hoists += (jt * kt) as u64;
                // 2 (J) x 4 (M) register micro-kernel: eight independent
                // i64 accumulators live in registers across the K-inner
                // loop — i64 addition is associative, so any grouping
                // yields the exact same sums.
                let mut jj = 0;
                while jj + 2 <= jt {
                    let b0 = &bases[jj * kt..(jj + 1) * kt];
                    let b1 = &bases[(jj + 1) * kt..(jj + 2) * kt];
                    let mut mm = m0;
                    while mm + 4 <= m0 + mt {
                        let x0 = &xq[mm * k + k0..mm * k + k0 + kt];
                        let x1 = &xq[(mm + 1) * k + k0..(mm + 1) * k + k0 + kt];
                        let x2 = &xq[(mm + 2) * k + k0..(mm + 2) * k + k0 + kt];
                        let x3 = &xq[(mm + 3) * k + k0..(mm + 3) * k + k0 + kt];
                        let (mut a00, mut a01) = (0i64, 0i64);
                        let (mut a10, mut a11) = (0i64, 0i64);
                        let (mut a20, mut a21) = (0i64, 0i64);
                        let (mut a30, mut a31) = (0i64, 0i64);
                        for t in 0..kt {
                            let r0 = b0[t] as usize;
                            let r1 = b1[t] as usize;
                            let (xa, xb) = (x0[t] as usize, x1[t] as usize);
                            let (xc, xd) = (x2[t] as usize, x3[t] as usize);
                            a00 += i64::from(table[(r0 | xa) & mask]);
                            a01 += i64::from(table[(r1 | xa) & mask]);
                            a10 += i64::from(table[(r0 | xb) & mask]);
                            a11 += i64::from(table[(r1 | xb) & mask]);
                            a20 += i64::from(table[(r0 | xc) & mask]);
                            a21 += i64::from(table[(r1 | xc) & mask]);
                            a30 += i64::from(table[(r0 | xd) & mask]);
                            a31 += i64::from(table[(r1 | xd) & mask]);
                        }
                        let ji = j0 + jj;
                        acc[mm * j + ji] += a00;
                        acc[mm * j + ji + 1] += a01;
                        acc[(mm + 1) * j + ji] += a10;
                        acc[(mm + 1) * j + ji + 1] += a11;
                        acc[(mm + 2) * j + ji] += a20;
                        acc[(mm + 2) * j + ji + 1] += a21;
                        acc[(mm + 3) * j + ji] += a30;
                        acc[(mm + 3) * j + ji + 1] += a31;
                        mm += 4;
                    }
                    for mi in mm..m0 + mt {
                        let x_seg = &xq[mi * k + k0..mi * k + k0 + kt];
                        acc[mi * j + j0 + jj] += dot_row(table, mask, b0, x_seg);
                        acc[mi * j + j0 + jj + 1] += dot_row(table, mask, b1, x_seg);
                    }
                    jj += 2;
                }
                if jj < jt {
                    let b0 = &bases[jj * kt..(jj + 1) * kt];
                    for mi in m0..m0 + mt {
                        let x_seg = &xq[mi * k + k0..mi * k + k0 + kt];
                        acc[mi * j + j0 + jj] += dot_row(table, mask, b0, x_seg);
                    }
                }
            }
        }
    }
    stats.flush();
}

/// One hoisted-row dot product: `Σ_t table[(bases[t] | x[t]) & mask]`,
/// unrolled into four independent i64 accumulators (exact under any
/// grouping).
#[inline]
fn dot_row(table: &[u32], mask: usize, bases: &[u32], x: &[u16]) -> i64 {
    let (mut a0, mut a1, mut a2, mut a3) = (0i64, 0i64, 0i64, 0i64);
    let mut bc = bases.chunks_exact(4);
    let mut xc = x.chunks_exact(4);
    for (bs, xs) in (&mut bc).zip(&mut xc) {
        a0 += i64::from(table[(bs[0] as usize | xs[0] as usize) & mask]);
        a1 += i64::from(table[(bs[1] as usize | xs[1] as usize) & mask]);
        a2 += i64::from(table[(bs[2] as usize | xs[2] as usize) & mask]);
        a3 += i64::from(table[(bs[3] as usize | xs[3] as usize) & mask]);
    }
    for (&b, &xv) in bc.remainder().iter().zip(xc.remainder()) {
        a0 += i64::from(table[(b as usize | xv as usize) & mask]);
    }
    a0 + a1 + a2 + a3
}

/// Backward `dX` half of Eq. 9 over one chunk of batch rows: adds
/// `g[r][ji] * scale * (table[(wq[ji][k] << bits) | xq[r][k]] - zero)`
/// into `dx[r][k]`, accumulating over `ji` in ascending order exactly as
/// the naive loop does (rows with `g == 0` are skipped by both kernels).
///
/// # Panics
///
/// Panics on inconsistent slice lengths or out-of-range codes.
#[allow(clippy::too_many_arguments)]
pub fn backward_dx(
    kernel: Kernel,
    shape: GemmShape,
    table: &[f32],
    wq: &[u16],
    xq: &[u16],
    g: &[f32],
    scale: f32,
    zero: f32,
    dx: &mut [f32],
) {
    let GemmShape { j, k, bits } = shape;
    let rows = shape.rows_of(xq.len(), "xq");
    assert_eq!(wq.len(), j * k, "wq length mismatch");
    assert_eq!(g.len(), rows * j, "g length mismatch");
    assert_eq!(dx.len(), rows * k, "dx length mismatch");
    if let Kernel::Naive = kernel {
        for (mi, (dx_row, x_row)) in dx.chunks_exact_mut(k).zip(xq.chunks_exact(k)).enumerate() {
            for ji in 0..j {
                let gv = g[mi * j + ji];
                if gv == 0.0 {
                    continue;
                }
                let w_row = &wq[ji * k..(ji + 1) * k];
                for kk in 0..k {
                    let idx = ((w_row[kk] as usize) << bits) | x_row[kk] as usize;
                    dx_row[kk] += gv * scale * (table[idx] - zero);
                }
            }
        }
        return;
    }

    let (_, _, kkt) = kernel.tile_extents();
    let n = 1usize << bits;
    assert_eq!(table.len(), n * n, "table must be 2^bits x 2^bits");
    let mask = table.len() - 1;
    let mut stats = TileStats::default();
    // The f32 accumulation into dx[mi][kk] runs over `ji`; keeping the
    // whole ascending `ji` sweep innermost (per K-chunk of eight outputs
    // held in registers) preserves the naive kernel's addition order
    // exactly, so the sums round identically. The M and J tile extents
    // are irrelevant here — every batch row is visited once and the J
    // sweep cannot be split without reordering additions.
    for mi in 0..rows {
        let g_row = &g[mi * j..(mi + 1) * j];
        for k0 in (0..k).step_by(kkt) {
            let kt = kkt.min(k - k0);
            stats.tiles += 1;
            let mut c = 0;
            while c + 8 <= kt {
                let o = mi * k + k0 + c;
                let xs: [usize; 8] = core::array::from_fn(|t| xq[o + t] as usize);
                let mut d: [f32; 8] = core::array::from_fn(|t| dx[o + t]);
                for (ji, &gv) in g_row.iter().enumerate() {
                    if gv == 0.0 {
                        continue;
                    }
                    let f = gv * scale;
                    let w = ji * k + k0 + c;
                    for t in 0..8 {
                        let r = (wq[w + t] as usize) << bits;
                        d[t] += f * (table[(r | xs[t]) & mask] - zero);
                    }
                }
                dx[o..o + 8].copy_from_slice(&d);
                c += 8;
            }
            for t in c..kt {
                let o = mi * k + k0 + t;
                let xv = xq[o] as usize;
                let mut d = dx[o];
                for (ji, &gv) in g_row.iter().enumerate() {
                    if gv == 0.0 {
                        continue;
                    }
                    let r = (wq[ji * k + k0 + t] as usize) << bits;
                    d += gv * scale * (table[(r | xv) & mask] - zero);
                }
                dx[o] = d;
            }
        }
    }
    stats.flush();
}

/// Backward `dW` half of Eq. 9 over one chunk of weight rows
/// (`wq_rows`/`dw` hold rows `ji0..ji0 + rows` of the full `[J, K]`
/// buffers): adds `g[m][ji] * scale * (table[idx] - zero)` into
/// `dw[r][k]`, accumulating over `m` in ascending order exactly as the
/// naive loop does.
///
/// `xq` and `g` are the *full* `[M, K]` activation and `[M, J]` gradient
/// buffers (`shape.j` is the full `J`, the stride of `g`).
///
/// # Panics
///
/// Panics on inconsistent slice lengths or out-of-range codes.
#[allow(clippy::too_many_arguments)]
pub fn backward_dw(
    kernel: Kernel,
    shape: GemmShape,
    table: &[f32],
    wq_rows: &[u16],
    ji0: usize,
    xq: &[u16],
    g: &[f32],
    scale: f32,
    zero: f32,
    dw: &mut [f32],
) {
    let GemmShape { j, k, bits } = shape;
    let m = shape.rows_of(xq.len(), "xq");
    let rows = shape.rows_of(wq_rows.len(), "wq_rows");
    assert!(ji0 + rows <= j, "weight-row chunk exceeds J");
    assert_eq!(g.len(), m * j, "g length mismatch");
    assert_eq!(dw.len(), rows * k, "dw length mismatch");
    if let Kernel::Naive = kernel {
        for (r, (dw_row, w_row)) in dw
            .chunks_exact_mut(k)
            .zip(wq_rows.chunks_exact(k))
            .enumerate()
        {
            let ji = ji0 + r;
            for mi in 0..m {
                let gv = g[mi * j + ji];
                if gv == 0.0 {
                    continue;
                }
                let x_row = &xq[mi * k..(mi + 1) * k];
                for kk in 0..k {
                    let idx = ((w_row[kk] as usize) << bits) | x_row[kk] as usize;
                    dw_row[kk] += gv * scale * (table[idx] - zero);
                }
            }
        }
        return;
    }

    let (_, _, kkt) = kernel.tile_extents();
    let n = 1usize << bits;
    assert_eq!(table.len(), n * n, "table must be 2^bits x 2^bits");
    let mask = table.len() - 1;
    let mut stats = TileStats::default();
    // The f32 accumulation into dw[ji][kk] runs over `mi`; the whole
    // ascending `mi` sweep stays innermost (per K-chunk of eight outputs
    // held in registers) so the sums round exactly as in the naive
    // kernel. The weight row is fixed per output row, so the eight LUT
    // row bases are hoisted into registers once per K-chunk and reused
    // across *all* M batch rows.
    for (r, (dw_row, w_row)) in dw
        .chunks_exact_mut(k)
        .zip(wq_rows.chunks_exact(k))
        .enumerate()
    {
        let ji = ji0 + r;
        for k0 in (0..k).step_by(kkt) {
            let kt = kkt.min(k - k0);
            stats.tiles += 1;
            stats.hoists += kt as u64;
            let mut c = 0;
            while c + 8 <= kt {
                let base = k0 + c;
                let rs: [usize; 8] = core::array::from_fn(|t| (w_row[base + t] as usize) << bits);
                let mut d: [f32; 8] = core::array::from_fn(|t| dw_row[base + t]);
                for mi in 0..m {
                    let gv = g[mi * j + ji];
                    if gv == 0.0 {
                        continue;
                    }
                    let f = gv * scale;
                    let o = mi * k + base;
                    for t in 0..8 {
                        let xv = xq[o + t] as usize;
                        d[t] += f * (table[(rs[t] | xv) & mask] - zero);
                    }
                }
                dw_row[base..base + 8].copy_from_slice(&d);
                c += 8;
            }
            for t in c..kt {
                let rb = (w_row[k0 + t] as usize) << bits;
                let mut d = dw_row[k0 + t];
                for mi in 0..m {
                    let gv = g[mi * j + ji];
                    if gv == 0.0 {
                        continue;
                    }
                    let xv = xq[mi * k + k0 + t] as usize;
                    d += gv * scale * (table[(rb | xv) & mask] - zero);
                }
                dw_row[k0 + t] = d;
            }
        }
    }
    stats.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_rng::Rng64;

    type Setup = (Vec<u32>, Vec<f32>, Vec<u16>, Vec<u16>, Vec<f32>);

    fn random_setup(seed: u64, m: usize, j: usize, k: usize, bits: u32) -> Setup {
        let mut rng = Rng64::seed_from_u64(seed);
        let n = 1usize << bits;
        let table: Vec<u32> = (0..n * n).map(|_| rng.next_u32() >> 16).collect();
        let ftable: Vec<f32> = (0..n * n).map(|_| rng.uniform_f32(-4.0, 4.0)).collect();
        let wq: Vec<u16> = (0..j * k).map(|_| rng.below(n as u64) as u16).collect();
        let xq: Vec<u16> = (0..m * k).map(|_| rng.below(n as u64) as u16).collect();
        let g: Vec<f32> = (0..m * j)
            .map(|_| {
                if rng.chance(0.2) {
                    0.0
                } else {
                    rng.uniform_f32(-1.0, 1.0)
                }
            })
            .collect();
        (table, ftable, wq, xq, g)
    }

    #[test]
    fn tiled_forward_matches_naive_on_awkward_shapes() {
        for (seed, m, j, k, tile) in [
            (1u64, 5usize, 3usize, 7usize, (2usize, 2usize, 3usize)),
            (2, 65, 17, 65, (64, 16, 64)),
            (3, 1, 1, 1, (64, 16, 64)),
            (4, 7, 2, 130, (4, 1, 64)),
            (5, 0, 3, 4, (2, 2, 2)),
        ] {
            let bits = 6;
            let shape = GemmShape { j, k, bits };
            let (table, _, wq, xq, _) = random_setup(seed, m, j, k, bits);
            let mut naive = vec![i64::MIN; m * j];
            let mut tiled = vec![i64::MAX; m * j];
            forward_acc(Kernel::Naive, shape, &table, &wq, &xq, &mut naive);
            let (mj, jk, kk) = tile;
            forward_acc(
                Kernel::Tiled { mj, jk, kk },
                shape,
                &table,
                &wq,
                &xq,
                &mut tiled,
            );
            assert_eq!(naive, tiled, "seed={seed} m={m} j={j} k={k}");
        }
    }

    #[test]
    fn tiled_backward_matches_naive_bit_for_bit() {
        for (seed, m, j, k, tile) in [
            (10u64, 9usize, 4usize, 11usize, (4usize, 2usize, 4usize)),
            (11, 33, 7, 19, (8, 3, 5)),
            (12, 1, 1, 1, (64, 16, 64)),
            (13, 0, 2, 3, (1, 1, 1)),
        ] {
            let bits = 5;
            let shape = GemmShape { j, k, bits };
            let (_, ftable, wq, xq, g) = random_setup(seed, m, j, k, bits);
            let (mj, jk, kk) = tile;
            let tiled_kernel = Kernel::Tiled { mj, jk, kk };

            let mut dx_n = vec![0.0f32; m * k];
            let mut dx_t = vec![0.0f32; m * k];
            backward_dx(
                Kernel::Naive,
                shape,
                &ftable,
                &wq,
                &xq,
                &g,
                0.37,
                1.5,
                &mut dx_n,
            );
            backward_dx(
                tiled_kernel,
                shape,
                &ftable,
                &wq,
                &xq,
                &g,
                0.37,
                1.5,
                &mut dx_t,
            );
            let bits_of = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits_of(&dx_n), bits_of(&dx_t), "dx seed={seed}");

            let mut dw_n = vec![0.0f32; j * k];
            let mut dw_t = vec![0.0f32; j * k];
            backward_dw(
                Kernel::Naive,
                shape,
                &ftable,
                &wq,
                0,
                &xq,
                &g,
                0.81,
                -2.25,
                &mut dw_n,
            );
            backward_dw(
                tiled_kernel,
                shape,
                &ftable,
                &wq,
                0,
                &xq,
                &g,
                0.81,
                -2.25,
                &mut dw_t,
            );
            assert_eq!(bits_of(&dw_n), bits_of(&dw_t), "dw seed={seed}");
        }
    }

    #[test]
    fn chunked_invocation_matches_whole_buffer() {
        // Worker partitioning: running the kernel per chunk of batch rows
        // (forward/dx) or weight rows (dw) must reproduce the whole-buffer
        // result exactly — tiles compose with pool chunks.
        let (m, j, k, bits) = (13usize, 5usize, 9usize, 6u32);
        let shape = GemmShape { j, k, bits };
        let (table, ftable, wq, xq, g) = random_setup(99, m, j, k, bits);
        let kernel = Kernel::Tiled {
            mj: 4,
            jk: 2,
            kk: 4,
        };

        let mut whole = vec![0i64; m * j];
        forward_acc(kernel, shape, &table, &wq, &xq, &mut whole);
        for split in [1usize, 2, 5, 13] {
            let mut chunked = vec![0i64; m * j];
            let rows_per = m.div_ceil(split);
            for c0 in (0..m).step_by(rows_per.max(1)) {
                let rows = rows_per.min(m - c0);
                forward_acc(
                    kernel,
                    shape,
                    &table,
                    &wq,
                    &xq[c0 * k..(c0 + rows) * k],
                    &mut chunked[c0 * j..(c0 + rows) * j],
                );
            }
            assert_eq!(whole, chunked, "forward split={split}");
        }

        let mut dw_whole = vec![0.0f32; j * k];
        backward_dw(
            kernel,
            shape,
            &ftable,
            &wq,
            0,
            &xq,
            &g,
            0.5,
            0.25,
            &mut dw_whole,
        );
        let mut dw_chunked = vec![0.0f32; j * k];
        for ji0 in 0..j {
            backward_dw(
                kernel,
                shape,
                &ftable,
                &wq[ji0 * k..(ji0 + 1) * k],
                ji0,
                &xq,
                &g,
                0.5,
                0.25,
                &mut dw_chunked[ji0 * k..(ji0 + 1) * k],
            );
        }
        let bits_of = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits_of(&dw_whole), bits_of(&dw_chunked));
    }

    #[test]
    fn kernel_spec_parsing() {
        assert_eq!(Kernel::parse("naive"), Ok(Kernel::Naive));
        assert_eq!(Kernel::parse("tiled"), Ok(Kernel::tiled_default()));
        assert_eq!(
            Kernel::parse("tiled:8x4x32"),
            Ok(Kernel::Tiled {
                mj: 8,
                jk: 4,
                kk: 32
            })
        );
        for bad in [
            "",
            "fast",
            "tiled:",
            "tiled:8x4",
            "tiled:8x4x0",
            "tiled:axbxc",
            "tiled:1x2x3x4",
        ] {
            assert!(Kernel::parse(bad).is_err(), "{bad:?} should be rejected");
        }
        let msg = Kernel::parse("bogus").unwrap_err().to_string();
        assert!(msg.contains("bogus"), "{msg}");
    }

    #[test]
    fn env_resolution_falls_back_to_tiled_default() {
        assert_eq!(kernel_from_env(Some("naive")), Kernel::Naive);
        assert_eq!(
            kernel_from_env(Some("tiled:2x2x2")),
            Kernel::Tiled {
                mj: 2,
                jk: 2,
                kk: 2
            }
        );
        assert_eq!(kernel_from_env(None), Kernel::tiled_default());
        assert_eq!(kernel_from_env(Some("garbage")), Kernel::tiled_default());
    }

    #[test]
    fn try_set_global_kernel_str_rejects_garbage_without_side_effects() {
        set_global_kernel(None);
        assert!(try_set_global_kernel_str("bogus:1x2").is_err());
        assert_eq!(*GLOBAL_OVERRIDE.lock().expect("lock"), None);
        assert_eq!(try_set_global_kernel_str("naive"), Ok(Kernel::Naive));
        assert_eq!(Kernel::global(), Kernel::Naive);
        set_global_kernel(None);
    }

    /// A malformed (present, non-empty) env spec warns exactly once per
    /// offending value on the global obs sink; empty values are silent.
    #[test]
    fn env_parse_failure_warns_once() {
        let obs = appmult_obs::ObsSink::recording();
        appmult_obs::set_global(&obs);
        // A spec no other test uses, so the per-value dedup is ours alone.
        assert_eq!(
            kernel_from_env(Some("kernel-warn-probe")),
            Kernel::tiled_default()
        );
        assert_eq!(
            kernel_from_env(Some("kernel-warn-probe")),
            Kernel::tiled_default()
        );
        assert_eq!(kernel_from_env(Some("  ")), Kernel::tiled_default()); // silent
        appmult_obs::set_global(&appmult_obs::ObsSink::null());
        let hits = obs
            .events()
            .iter()
            .filter(|e| {
                e.kind == "env.parse_error" && e.to_json_line().contains("kernel-warn-probe")
            })
            .count();
        assert_eq!(hits, 1, "expected exactly one warning event");
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for k in [
            Kernel::Naive,
            Kernel::tiled_default(),
            Kernel::Tiled {
                mj: 3,
                jk: 5,
                kk: 7,
            },
        ] {
            assert_eq!(Kernel::parse(&k.label()), Ok(k));
        }
    }

    #[test]
    fn tile_counters_reach_the_recording_sink() {
        let obs = appmult_obs::ObsSink::recording();
        appmult_obs::set_global(&obs);
        let (m, j, k, bits) = (8usize, 4usize, 8usize, 4u32);
        let shape = GemmShape { j, k, bits };
        let (table, _, wq, xq, _) = random_setup(7, m, j, k, bits);
        let mut acc = vec![0i64; m * j];
        forward_acc(
            Kernel::Tiled {
                mj: 4,
                jk: 2,
                kk: 4,
            },
            shape,
            &table,
            &wq,
            &xq,
            &mut acc,
        );
        appmult_obs::set_global(&appmult_obs::ObsSink::null());
        // 2 M-tiles × 2 J-tiles × 2 K-tiles; each K-tile hoists jt × kt =
        // 2 × 4 rows. (>= rather than ==: concurrent sibling tests may
        // also hit the global sink while it is installed.)
        assert!(obs.counter("kernel.tiles") >= 8);
        assert!(obs.counter("kernel.lut_row_hoists") >= 64);
    }
}
